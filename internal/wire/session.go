package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fib"
)

// Session protocol: typed frames between a device agent (Client) and the
// dispatcher (Server), layered on the same length-prefixed framing as
// the Msg codec. The session layer is what makes ingestion fault
// tolerant:
//
//   - every data frame carries the stream's monotonically increasing
//     sequence number (never reset across reconnects), so the receiver
//     can discard duplicates introduced by at-least-once replay;
//   - the server acknowledges the highest contiguous sequence consumed,
//     so the client can prune its replay buffer;
//   - hello frames re-bind a reconnecting client to its server-side
//     stream state, making reconnection transparent to the dispatcher;
//   - heartbeats keep idle connections verifiably alive under read
//     deadlines.
//
// Frame bodies (after the u32 length prefix):
//
//	hello      [0x01][u8 version][u16-len stream][u64 first][u32 attempt]
//	data       [0x02][u32 device][u64 seq][Msg body]
//	ack        [0x03][u64 seq]
//	heartbeat  [0x04]
//
// The device ID is carried in the data envelope (redundantly with the
// Msg body) so that the receiver can attribute a frame whose body fails
// to parse — quarantining the poisoned device instead of dropping the
// connection.
const (
	sessionVersion = 2

	frameHello     byte = 0x01
	frameData      byte = 0x02
	frameAck       byte = 0x03
	frameHeartbeat byte = 0x04
	frameSubscribe byte = 0x05 // client → server: watch a spec (subscribe.go)
	frameVerdict   byte = 0x06 // server → client: verdict change push (subscribe.go)
	frameResultSub byte = 0x07 // client → server: stream results (shard.go)
	frameResult    byte = 0x08 // server → client: result push (shard.go)
	frameFpReq     byte = 0x09 // client → server: fingerprint request (shard.go)
	frameFpResp    byte = 0x0A // server → client: fingerprint response (shard.go)
)

// helloInfo is the decoded content of a hello frame.
type helloInfo struct {
	Version uint8
	// Stream is the client's stable identity: sequence numbers and the
	// server's dedup state are scoped to it, surviving reconnects.
	Stream string
	// First is the lowest sequence number the client may send on this
	// connection (its oldest unacknowledged frame, or the next fresh
	// sequence if nothing is in flight). A server with no state for the
	// stream adopts it as the next expected sequence.
	First uint64
	// Attempt counts reconnections (0 on the first connection).
	Attempt uint32
}

// sessionFrame is one decoded session-layer frame.
type sessionFrame struct {
	Type   byte
	Hello  helloInfo
	Device fib.DeviceID
	Seq    uint64
	Msg    Msg
	// MsgErr records a data frame whose envelope parsed but whose Msg
	// body did not (wraps ErrCorruptFrame). The connection can continue;
	// policy decides what happens to the frame.
	MsgErr error
	// Spec and Event carry subscription frames (subscribe.go).
	Spec  string
	Event VerdictEvent
	// SubSet, Result, and Fp carry shard routing/aggregation frames
	// (shard.go).
	SubSet []int
	Result ResultEvent
	Fp     FingerprintReply
	// FpEpoch is a fingerprint request's epoch (the request reuses Fp.ID).
	FpEpoch string
}

// appendHello encodes a hello frame body.
func appendHello(buf []byte, h helloInfo) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameHello, h.Version)}
	if err := w.str(h.Stream); err != nil {
		return nil, err
	}
	w.u64(h.First)
	w.u32(h.Attempt)
	return w.buf, nil
}

// appendData encodes a data frame body.
func appendData(buf []byte, dev fib.DeviceID, seq uint64, m Msg) ([]byte, error) {
	w := msgWriter{buf: append(buf, frameData)}
	w.u32(uint32(dev))
	w.u64(seq)
	return appendMsgBody(w.buf, m)
}

// appendAck encodes an ack frame body.
func appendAck(buf []byte, seq uint64) []byte {
	w := msgWriter{buf: append(buf, frameAck)}
	w.u64(seq)
	return w.buf
}

// parseSessionFrame decodes a fully-read session frame body. A data
// frame with an intact envelope but an unparsable Msg body is NOT an
// error: the frame is returned with MsgErr set, so the receiver can
// attribute and skip it. All returned errors wrap ErrCorruptFrame and
// are fatal to the connection (framing trust is gone).
func parseSessionFrame(body []byte) (sessionFrame, error) {
	if len(body) == 0 {
		return sessionFrame{}, fmt.Errorf("wire: empty session frame: %w", ErrCorruptFrame)
	}
	f := sessionFrame{Type: body[0]}
	rest := body[1:]
	switch f.Type {
	case frameHello:
		r := msgReader{buf: rest}
		f.Hello.Version = r.u8()
		f.Hello.Stream = r.str()
		f.Hello.First = r.u64()
		f.Hello.Attempt = r.u32()
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: hello frame: %w", r.err)
		}
	case frameData:
		r := msgReader{buf: rest}
		f.Device = fib.DeviceID(r.u32())
		f.Seq = r.u64()
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: data frame envelope: %w", r.err)
		}
		f.Msg, f.MsgErr = parseMsgBody(rest[r.off:])
	case frameAck:
		r := msgReader{buf: rest}
		f.Seq = r.u64()
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: ack frame: %w", r.err)
		}
	case frameHeartbeat:
		// No payload.
	case frameSubscribe:
		r := msgReader{buf: rest}
		f.Spec = r.str()
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: subscribe frame: %w", r.err)
		}
	case frameVerdict:
		r := msgReader{buf: rest}
		f.Event.Seq = r.u64()
		f.Event.Spec = r.str()
		f.Event.Epoch = r.str()
		f.Event.Subspace = int(r.u32())
		f.Event.Verdict = r.u8()
		f.Event.Loop = r.u8()
		f.Event.PrevVerdict = r.u8()
		f.Event.PrevLoop = r.u8()
		f.Event.First = r.u8()&1 != 0
		if n := int(r.u8()); n > 0 && r.err == nil {
			f.Event.Witness = make([]uint64, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				f.Event.Witness = append(f.Event.Witness, r.u64())
			}
		}
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: verdict frame: %w", r.err)
		}
	case frameResultSub:
		r := msgReader{buf: rest}
		if n := int(r.u16()); n > 0 && r.err == nil {
			f.SubSet = make([]int, 0, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				f.SubSet = append(f.SubSet, int(r.u32()))
			}
		}
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: result-sub frame: %w", r.err)
		}
	case frameResult:
		r := msgReader{buf: rest}
		f.Result.Subspace = int(r.u32())
		f.Result.Epoch = r.str()
		f.Result.Check = r.str()
		f.Result.Verdict = r.u8()
		f.Result.Loop = r.u8()
		if n := int(r.u8()); n > 0 && r.err == nil {
			f.Result.Witness = make([]uint64, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				f.Result.Witness = append(f.Result.Witness, r.u64())
			}
		}
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: result frame: %w", r.err)
		}
	case frameFpReq:
		r := msgReader{buf: rest}
		f.Fp.ID = r.u64()
		f.FpEpoch = r.str()
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: fingerprint request: %w", r.err)
		}
	case frameFpResp:
		r := msgReader{buf: rest}
		f.Fp.ID = r.u64()
		f.Fp.Err = r.str()
		if n := int(r.u32()); n > 0 && r.err == nil {
			f.Fp.Parts = make(map[int]string, min(n, 4096))
			for i := 0; i < n && r.err == nil; i++ {
				idx := int(r.u32())
				d := r.str()
				if r.err != nil {
					break
				}
				if _, dup := f.Fp.Parts[idx]; dup {
					return sessionFrame{}, fmt.Errorf("wire: fingerprint response: duplicate subspace %d: %w", idx, ErrCorruptFrame)
				}
				f.Fp.Parts[idx] = d
			}
		}
		if r.err != nil {
			return sessionFrame{}, fmt.Errorf("wire: fingerprint response: %w", r.err)
		}
	default:
		return sessionFrame{}, fmt.Errorf("wire: unknown frame type 0x%02x: %w", f.Type, ErrCorruptFrame)
	}
	return f, nil
}

// frameReader reads session frames from a stream, reusing one buffer.
type frameReader struct {
	r     *bufio.Reader
	buf   []byte
	nread uint64
}

func newFrameReader(r *bufio.Reader) *frameReader { return &frameReader{r: r} }

func (fr *frameReader) read() (sessionFrame, error) {
	body, n, err := readFrame(fr.r, fr.buf)
	fr.buf = body
	fr.nread += n
	if err != nil {
		return sessionFrame{}, err
	}
	return parseSessionFrame(body)
}

// sessionWriter serializes session frame writes on a connection. Both
// sides write from more than one goroutine (the server's reader sends
// acks while a heartbeat prober may ping; the client's sender races its
// maintenance loop), so every write takes the mutex and flushes.
type sessionWriter struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	buf     []byte
	timeout time.Duration // per-write deadline; 0 disables
}

func newSessionWriter(conn net.Conn, timeout time.Duration) *sessionWriter {
	return &sessionWriter{conn: conn, bw: bufio.NewWriter(conn), timeout: timeout}
}

func (sw *sessionWriter) write(body []byte) error {
	if sw.timeout > 0 {
		sw.conn.SetWriteDeadline(time.Now().Add(sw.timeout))
	}
	err := writeFrame(sw.bw, body)
	if sw.timeout > 0 {
		sw.conn.SetWriteDeadline(time.Time{})
	}
	return err
}

func (sw *sessionWriter) hello(h helloInfo) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendHello(sw.buf[:0], h)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) data(dev fib.DeviceID, seq uint64, m Msg) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendData(sw.buf[:0], dev, seq, m)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) ack(seq uint64) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.buf = appendAck(sw.buf[:0], seq)
	return sw.write(sw.buf)
}

func (sw *sessionWriter) subscribe(spec string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendSubscribe(sw.buf[:0], spec)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) verdict(ev VerdictEvent) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendVerdict(sw.buf[:0], ev)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) resultSub(subspaces []int) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendResultSub(sw.buf[:0], subspaces)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) result(ev ResultEvent) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendResult(sw.buf[:0], ev)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) fpReq(id uint64, epoch string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendFpReq(sw.buf[:0], id, epoch)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) fpResp(rep FingerprintReply, order []int) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	body, err := appendFpResp(sw.buf[:0], rep, order)
	if err != nil {
		return err
	}
	sw.buf = body
	return sw.write(body)
}

func (sw *sessionWriter) heartbeat() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.buf = append(sw.buf[:0], frameHeartbeat)
	return sw.write(sw.buf)
}

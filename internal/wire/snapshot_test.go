package wire

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	msgs := []Msg{sampleMsg(), sampleMsg(), {Device: 3, Epoch: "e2"}}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("read %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		want := msgs[i]
		if len(want.Updates) == 0 {
			want.Updates = got[i].Updates // nil vs empty slice
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

func TestSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	msgs := []Msg{sampleMsg()}
	if err := SaveSnapshot(path, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Device != msgs[0].Device {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadSnapshotRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, []Msg{sampleMsg()}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

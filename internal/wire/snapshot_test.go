package wire

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	msgs := []Msg{sampleMsg(), sampleMsg(), {Device: 3, Epoch: "e2"}}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("read %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		want := msgs[i]
		if len(want.Updates) == 0 {
			want.Updates = got[i].Updates // nil vs empty slice
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

func TestSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	msgs := []Msg{sampleMsg()}
	if err := SaveSnapshot(path, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Device != msgs[0].Device {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadSnapshotRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, []Msg{sampleMsg()}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

// TestReadSnapshotTruncatedTailReturnsPrefix pins the crash-mid-append
// contract: a tear inside the FINAL frame must surface the typed
// ErrTruncated together with every intact frame before the tear, at any
// cut position. Length-prefixed framing guarantees a tear cannot damage
// earlier frames, so the decoded prefix is trustworthy.
func TestReadSnapshotTruncatedTailReturnsPrefix(t *testing.T) {
	msgs := []Msg{sampleMsg(), {Device: 3, Epoch: "e2"}, sampleMsg()}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, msgs[:2]); err != nil {
		t.Fatal(err)
	}
	intact := buf.Len()
	if err := WriteSnapshot(&buf, msgs[2:]); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Cut at every position strictly inside the final frame.
	for cut := intact + 1; cut < len(raw); cut++ {
		got, err := ReadSnapshot(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut %d: decoded %d messages, want the 2-frame prefix", cut, len(got))
		}
		if got[1].Device != msgs[1].Device || got[1].Epoch != msgs[1].Epoch {
			t.Fatalf("cut %d: prefix content damaged: %+v", cut, got[1])
		}
	}

	// A cut exactly on a frame boundary is a clean EOF: full prefix, no error.
	got, err := ReadSnapshot(bytes.NewReader(raw[:intact]))
	if err != nil || len(got) != 2 {
		t.Fatalf("boundary cut: got %d msgs, err %v", len(got), err)
	}
}

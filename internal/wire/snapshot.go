package wire

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Snapshot I/O: a snapshot file is simply a sequence of update frames —
// the "FIB Snapshots" artifact of the paper's Figure 1, used for
// one-shot verification runs (e.g. validating FIBs produced by a network
// simulation, §5.5's on-demand deployment).

// WriteSnapshot writes messages as consecutive frames.
func WriteSnapshot(w io.Writer, msgs []Msg) error {
	enc := NewEncoder(w)
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot reads frames until EOF. A snapshot whose final frame is
// cut short (a crash mid-append, a partial copy) returns the
// successfully decoded prefix together with an error wrapping
// ErrTruncated: every frame before the tear is intact (framing is
// length-prefixed, so a tear cannot corrupt earlier frames), and the
// caller decides whether a prefix is acceptable. Other failures
// (oversized or corrupt frames) still discard the read.
func ReadSnapshot(r io.Reader) ([]Msg, error) {
	dec := NewDecoder(r)
	var out []Msg
	for {
		m, err := dec.Decode()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if errors.Is(err, ErrTruncated) {
			return out, err
		}
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
}

// SaveSnapshot writes a snapshot file.
func SaveSnapshot(path string, msgs []Msg) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, msgs); err != nil {
		f.Close()
		return fmt.Errorf("wire: writing snapshot: %w", err)
	}
	return f.Close()
}

// LoadSnapshot reads a snapshot file.
func LoadSnapshot(path string) ([]Msg, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// Package trie implements the prefix trie used for fast look-up of
// overlapped rules (§3.4 of the paper).
//
// Computing atomic overwrites only needs to consider rules whose matches
// overlap; for (mostly) longest-prefix-match data planes, a binary trie on
// the rule's primary prefix dimension finds exactly those rules: the rules
// stored on the root-to-node path (shorter prefixes containing the query)
// plus every rule in the node's subtree (longer prefixes contained in the
// query). Rules whose match is not a prefix (e.g. suffix-match routing)
// are inserted at the root with length 0 and are conservatively returned
// by every query, which is correct — overlap tests downstream are exact,
// the trie only prunes.
package trie

import "fmt"

// Trie is a binary prefix trie with payloads of type T at each node.
// T must be comparable so payloads can be deleted by value.
// The zero Trie is not usable; call New.
type Trie[T comparable] struct {
	width int
	root  *node[T]
	size  int
}

type node[T comparable] struct {
	children [2]*node[T]
	items    []T
}

// New returns a trie for prefixes over width-bit values (1..64).
func New[T comparable](width int) *Trie[T] {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("trie: invalid width %d", width))
	}
	return &Trie[T]{width: width, root: &node[T]{}}
}

// Len reports the number of stored items.
func (t *Trie[T]) Len() int { return t.size }

// locate walks to the node for (value, plen), optionally creating it.
func (t *Trie[T]) locate(value uint64, plen int, create bool) *node[T] {
	if plen < 0 || plen > t.width {
		panic(fmt.Sprintf("trie: prefix length %d out of range [0,%d]", plen, t.width))
	}
	n := t.root
	for i := 0; i < plen; i++ {
		b := (value >> uint(t.width-1-i)) & 1
		next := n.children[b]
		if next == nil {
			if !create {
				return nil
			}
			next = &node[T]{}
			n.children[b] = next
		}
		n = next
	}
	return n
}

// Insert stores item under the prefix (value, plen). value is a full-width
// value whose low bits beyond plen are ignored.
func (t *Trie[T]) Insert(value uint64, plen int, item T) {
	n := t.locate(value, plen, true)
	n.items = append(n.items, item)
	t.size++
}

// Delete removes one occurrence of item stored under (value, plen),
// reporting whether it was found.
func (t *Trie[T]) Delete(value uint64, plen int, item T) bool {
	n := t.locate(value, plen, false)
	if n == nil {
		return false
	}
	for i, it := range n.items {
		if it == item {
			n.items = append(n.items[:i], n.items[i+1:]...)
			t.size--
			return true
		}
	}
	return false
}

// Overlapping appends to dst every item whose stored prefix overlaps the
// query prefix (value, plen): items on the path from the root to the query
// node, plus all items in the query node's subtree. The result is a
// superset-pruned candidate list; callers perform exact overlap tests.
func (t *Trie[T]) Overlapping(value uint64, plen int, dst []T) []T {
	n := t.root
	for i := 0; i < plen; i++ {
		dst = append(dst, n.items...)
		b := (value >> uint(t.width-1-i)) & 1
		n = n.children[b]
		if n == nil {
			return dst
		}
	}
	return collect(n, dst)
}

func collect[T comparable](n *node[T], dst []T) []T {
	dst = append(dst, n.items...)
	for _, c := range n.children {
		if c != nil {
			dst = collect(c, dst)
		}
	}
	return dst
}

// Walk visits every stored item with its prefix.
func (t *Trie[T]) Walk(fn func(value uint64, plen int, item T)) {
	var rec func(n *node[T], value uint64, plen int)
	rec = func(n *node[T], value uint64, plen int) {
		for _, it := range n.items {
			fn(value, plen, it)
		}
		for b, c := range n.children {
			if c != nil {
				rec(c, value|uint64(b)<<uint(t.width-1-plen), plen+1)
			}
		}
	}
	rec(t.root, 0, 0)
}

package trie

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tr := New[int](8)
	tr.Insert(0xA0, 4, 1) // 1010xxxx
	tr.Insert(0xA8, 5, 2) // 10101xxx (inside 1)
	tr.Insert(0x40, 2, 3) // 01xxxxxx (disjoint)
	tr.Insert(0, 0, 4)    // wildcard

	got := tr.Overlapping(0xA8, 5, nil)
	sort.Ints(got)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Overlapping = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Overlapping = %v, want %v", got, want)
		}
	}
	// Query covering everything returns everything.
	if n := len(tr.Overlapping(0, 0, nil)); n != 4 {
		t.Errorf("root query returned %d items, want 4", n)
	}
	// Disjoint query sees only wildcard and its own branch.
	got = tr.Overlapping(0x40, 2, nil)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("disjoint query = %v, want [3 4]", got)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int](8)
	tr.Insert(0x80, 1, 7)
	tr.Insert(0x80, 1, 8)
	if !tr.Delete(0x80, 1, 7) {
		t.Fatal("Delete failed")
	}
	if tr.Delete(0x80, 1, 7) {
		t.Fatal("Delete found removed item")
	}
	if tr.Delete(0x00, 3, 9) {
		t.Fatal("Delete found item at empty node")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	got := tr.Overlapping(0x80, 1, nil)
	if len(got) != 1 || got[0] != 8 {
		t.Errorf("after delete: %v", got)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"width 0":  func() { New[int](0) },
		"width 65": func() { New[int](65) },
		"plen -1":  func() { New[int](8).Insert(0, -1, 1) },
		"plen big": func() { New[int](8).Insert(0, 9, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// prefixesOverlap is the brute-force reference: two prefixes overlap iff
// one contains the other.
func prefixesOverlap(v1 uint64, l1 int, v2 uint64, l2 int, width int) bool {
	l := l1
	if l2 < l {
		l = l2
	}
	if l == 0 {
		return true
	}
	shift := uint(width - l)
	return v1>>shift == v2>>shift
}

func TestOverlappingMatchesBruteForceQuick(t *testing.T) {
	const width = 10
	type pfx struct {
		V uint16
		L uint8
	}
	check := func(stored []pfx, q pfx) bool {
		tr := New[int](width)
		norm := func(p pfx) (uint64, int) {
			return uint64(p.V) & (1<<width - 1), int(p.L) % (width + 1)
		}
		for i, p := range stored {
			v, l := norm(p)
			tr.Insert(v, l, i)
		}
		qv, ql := norm(q)
		got := tr.Overlapping(qv, ql, nil)
		set := make(map[int]bool, len(got))
		for _, i := range got {
			set[i] = true
		}
		for i, p := range stored {
			v, l := norm(p)
			if prefixesOverlap(v, l, qv, ql, width) && !set[i] {
				return false // trie missed a real overlap: unsound
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOverlappingPrunes(t *testing.T) {
	// The trie must not return wildly more than the true overlaps for
	// prefix-only workloads: check exactness on disjoint subtrees.
	const width = 16
	tr := New[int](width)
	rng := rand.New(rand.NewSource(4))
	type stored struct {
		v uint64
		l int
	}
	var all []stored
	for i := 0; i < 500; i++ {
		l := 1 + rng.Intn(width)
		v := uint64(rng.Intn(1 << width))
		tr.Insert(v, l, i)
		all = append(all, stored{v, l})
	}
	for trial := 0; trial < 100; trial++ {
		l := 1 + rng.Intn(width)
		v := uint64(rng.Intn(1 << width))
		got := tr.Overlapping(v, l, nil)
		want := 0
		for _, s := range all {
			if prefixesOverlap(s.v, s.l, v, l, width) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("prefix-only query returned %d items, want exactly %d", len(got), want)
		}
	}
}

func TestWalk(t *testing.T) {
	tr := New[int](8)
	in := map[int][2]uint64{
		1: {0xA0, 4},
		2: {0x00, 0},
		3: {0xFF, 8},
	}
	for item, p := range in {
		tr.Insert(p[0], int(p[1]), item)
	}
	seen := map[int][2]uint64{}
	tr.Walk(func(v uint64, l int, item int) {
		seen[item] = [2]uint64{v, uint64(l)}
	})
	if len(seen) != len(in) {
		t.Fatalf("Walk visited %d items, want %d", len(seen), len(in))
	}
	for item, p := range in {
		got := seen[item]
		// Compare only the significant bits.
		if got[1] != p[1] || (p[1] > 0 && got[0]>>(8-p[1]) != p[0]>>(8-p[1])) {
			t.Errorf("item %d: Walk reported %#x/%d, want %#x/%d", item, got[0], got[1], p[0], p[1])
		}
	}
}

func TestReuseDstSlice(t *testing.T) {
	tr := New[int](4)
	tr.Insert(0x8, 1, 1)
	buf := make([]int, 0, 16)
	out := tr.Overlapping(0x8, 1, buf)
	if len(out) != 1 || out[0] != 1 {
		t.Errorf("Overlapping with reused dst = %v", out)
	}
}

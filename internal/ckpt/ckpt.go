// Package ckpt implements the crash-consistent checkpoint format of the
// durability subsystem: a versioned container of CRC-guarded sections
// holding everything a warm restart needs — per-subspace BDD node
// stores, PAT stores, inverse models, forward tables, epoch bookkeeping
// and retained update queues, published verdicts, and per-stream wire
// sequence state.
//
// Crash consistency is byte-level, not fsync-ordering cleverness: a
// checkpoint is encoded fully in memory, written to a temp file in the
// target directory, fsynced, atomically renamed into place, and the
// directory fsynced. A crash at any point leaves either the previous
// checkpoint or the new one — never a half-visible file under the final
// name. Every section carries a CRC32 so a torn or bit-flipped file is
// detected on load (typed ErrCorrupt), logged, and skipped in favor of
// an older candidate or a full re-ingest; a hostile file can never panic
// the restore path (FuzzCheckpointDecode enforces this).
package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/fib"
)

// Format constants.
const (
	// magic identifies a Flash checkpoint file; the trailing byte is the
	// container version.
	magic = "FLCKPT\x00\x01"

	// MaxSize bounds a checkpoint file (1 GiB). A declared size beyond
	// it is treated as corruption, keeping a hostile length from driving
	// a huge allocation.
	MaxSize = 1 << 30

	// Section types.
	secMeta     = 1
	secStreams  = 2
	secVerdicts = 3
	secSubspace = 4
	secEnd      = 0xFFFFFFFF
)

// Typed sentinel errors. Restore degrades on ErrCorrupt/ErrBadVersion
// (older candidate, then full re-ingest); it never propagates them as
// fatal.
var (
	// ErrCorrupt reports a torn, truncated, or bit-flipped checkpoint:
	// bad magic, a section whose CRC does not match, or a payload that
	// does not parse.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

	// ErrBadVersion reports a checkpoint written by an incompatible
	// format version.
	ErrBadVersion = errors.New("ckpt: unsupported checkpoint version")

	// ErrNoCheckpoint reports that a directory holds no loadable
	// checkpoint (none at all, or all corrupt).
	ErrNoCheckpoint = errors.New("ckpt: no usable checkpoint")
)

// Meta is the checkpoint-wide header section.
type Meta struct {
	// CreatedAtUnixNano timestamps the capture (also encoded in the
	// file name, newest-first ordering).
	CreatedAtUnixNano int64
	// ConfigHash fingerprints the System configuration the checkpoint
	// was captured under (layout, subspace count, check names). Restore
	// refuses a checkpoint whose hash differs from the booting config —
	// refs and partitions would be meaningless.
	ConfigHash uint64
	// Subspaces is the configured subspace count.
	Subspaces int32
	// NVars is the BDD variable count of every subspace engine.
	NVars int32
}

// VerdictCell is one published (spec, subspace) verdict.
type VerdictCell struct {
	Spec     string
	Subspace int32
	Epoch    string
	Verdict  int32
	Loop     int32
	Witness  []uint64
}

// VerdictState is the verdict bus: the last published verdict per cell
// plus the bus sequence counter, so restored subscribers continue the
// same sequence without replayed "first verdict" events.
type VerdictState struct {
	Seq   uint64
	Cells []VerdictCell
}

// DevEpoch is one device's latest observed epoch tag.
type DevEpoch struct {
	Device int32
	Epoch  string
}

// DevCount is one device's consumed-queue-prefix marker.
type DevCount struct {
	Device int32
	Count  int32
}

// QueuedMsg is one retained (not yet globally consumed) update message.
// Rule Match fields are BDD refs into the same subspace engine the node
// dump rebuilds, so they survive the round trip unchanged.
type QueuedMsg struct {
	Epoch   string
	Updates []fib.Update
}

// DeviceQueue is one device's retained message queue.
type DeviceQueue struct {
	Device int32
	Msgs   []QueuedMsg
}

// DeviceTable is one device's forward table in the serialized verifier.
type DeviceTable struct {
	Device int32
	Rules  []fib.Rule
}

// ECPair is one inverse-model equivalence class: interned action vector
// (PAT ref) → predicate (BDD ref).
type ECPair struct {
	Vec  int32
	Pred int32
}

// Subspace is one subspace's complete durable state.
type Subspace struct {
	Index int32
	// Epoch tags the serialized (most-converged) verifier.
	Epoch string
	// BDD is the engine node dump (bdd.ExportNodes).
	BDD []int32
	// PAT is the verifier transformer's store dump (pat.ExportNodes).
	PAT []int32
	// Universe is the model's subspace predicate (a BDD ref).
	Universe int32
	// ECs is the inverse model.
	ECs []ECPair
	// Tables holds the serialized verifier's per-device forward tables.
	Tables []DeviceTable
	// SyncOrder lists devices in synchronization order; restore replays
	// it to rebuild identical detection state.
	SyncOrder []int32
	// Tracker state: per-device latest epochs and the active/inactive
	// epoch sets.
	TrackerLast    []DevEpoch
	ActiveEpochs   []string
	InactiveEpochs []string
	// Queues holds the compacted retained update queues; Fed the
	// serialized verifier's consumed-prefix markers over them.
	Queues []DeviceQueue
	Fed    []DevCount
}

// Checkpoint is the full decoded checkpoint.
type Checkpoint struct {
	Meta Meta
	// Streams maps wire stream name → next expected sequence number at
	// capture time; the session layer resumes agents from these so only
	// post-checkpoint updates are replayed.
	Streams map[string]uint64
	// Verdicts is the published-verdict state.
	Verdicts VerdictState
	// Subspaces holds one entry per subspace that had a live verifier
	// (others re-ingest from their agents' replays).
	Subspaces []Subspace
}

// ---- encoding ----

// appendSection frames one section: type, length, payload, CRC32.
func appendSection(buf []byte, typ uint32, payload []byte) []byte {
	var w writer
	w.buf = buf
	w.u32(typ)
	w.u64(uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	w.u32(crc32.ChecksumIEEE(payload))
	return w.buf
}

func encodeMeta(m Meta) []byte {
	var w writer
	w.i64(m.CreatedAtUnixNano)
	w.u64(m.ConfigHash)
	w.i32(m.Subspaces)
	w.i32(m.NVars)
	return w.buf
}

func decodeMeta(buf []byte) (Meta, error) {
	r := reader{buf: buf}
	m := Meta{
		CreatedAtUnixNano: r.i64(),
		ConfigHash:        r.u64(),
		Subspaces:         r.i32(),
		NVars:             r.i32(),
	}
	return m, r.err
}

func encodeStreams(streams map[string]uint64) []byte {
	names := make([]string, 0, len(streams))
	for n := range streams {
		names = append(names, n)
	}
	sort.Strings(names)
	var w writer
	w.u32(uint32(len(names)))
	for _, n := range names {
		w.str(n)
		w.u64(streams[n])
	}
	return w.buf
}

func decodeStreams(buf []byte) (map[string]uint64, error) {
	r := reader{buf: buf}
	n := r.count(12) // name length prefix + seq
	out := make(map[string]uint64, n)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str()
		out[name] = r.u64()
	}
	return out, r.err
}

func encodeVerdicts(v VerdictState) []byte {
	var w writer
	w.u64(v.Seq)
	w.u32(uint32(len(v.Cells)))
	for _, c := range v.Cells {
		w.str(c.Spec)
		w.i32(c.Subspace)
		w.str(c.Epoch)
		w.i32(c.Verdict)
		w.i32(c.Loop)
		w.u64s(c.Witness)
	}
	return w.buf
}

func decodeVerdicts(buf []byte) (VerdictState, error) {
	r := reader{buf: buf}
	v := VerdictState{Seq: r.u64()}
	n := r.count(20)
	for i := 0; i < n && r.err == nil; i++ {
		v.Cells = append(v.Cells, VerdictCell{
			Spec:     r.str(),
			Subspace: r.i32(),
			Epoch:    r.str(),
			Verdict:  r.i32(),
			Loop:     r.i32(),
			Witness:  r.u64s(),
		})
	}
	return v, r.err
}

func appendRule(w *writer, r fib.Rule) {
	w.i64(r.ID)
	w.i32(r.Pri)
	w.i32(int32(r.Action))
	w.i32(int32(r.Match))
	w.u8(uint8(len(r.Desc)))
	for _, f := range r.Desc {
		w.str(f.Field)
		w.u8(uint8(f.Kind))
		w.u64(f.Value)
		w.i32(int32(f.Len))
		w.u64(f.Mask)
	}
}

func readRule(r *reader) fib.Rule {
	out := fib.Rule{
		ID:     r.i64(),
		Pri:    r.i32(),
		Action: fib.Action(r.i32()),
		Match:  bdd.Ref(r.i32()),
	}
	nd := int(r.u8())
	for j := 0; j < nd && r.err == nil; j++ {
		out.Desc = append(out.Desc, fib.FieldMatch{
			Field: r.str(),
			Kind:  fib.MatchKind(r.u8()),
			Value: r.u64(),
			Len:   int(r.i32()),
			Mask:  r.u64(),
		})
	}
	return out
}

func appendUpdates(w *writer, ups []fib.Update) {
	w.u32(uint32(len(ups)))
	for _, u := range ups {
		w.u8(uint8(u.Op))
		appendRule(w, u.Rule)
	}
}

func readUpdates(r *reader) []fib.Update {
	n := r.count(21) // op + fixed rule prefix
	var out []fib.Update
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, fib.Update{Op: fib.Op(r.u8()), Rule: readRule(r)})
	}
	return out
}

func encodeSubspace(s Subspace) []byte {
	var w writer
	w.i32(s.Index)
	w.str(s.Epoch)
	w.i32s(s.BDD)
	w.i32s(s.PAT)
	w.i32(s.Universe)
	w.u32(uint32(len(s.ECs)))
	for _, ec := range s.ECs {
		w.i32(ec.Vec)
		w.i32(ec.Pred)
	}
	w.u32(uint32(len(s.Tables)))
	for _, dt := range s.Tables {
		w.i32(dt.Device)
		w.u32(uint32(len(dt.Rules)))
		for _, rl := range dt.Rules {
			appendRule(&w, rl)
		}
	}
	w.i32s(s.SyncOrder)
	w.u32(uint32(len(s.TrackerLast)))
	for _, de := range s.TrackerLast {
		w.i32(de.Device)
		w.str(de.Epoch)
	}
	w.u32(uint32(len(s.ActiveEpochs)))
	for _, e := range s.ActiveEpochs {
		w.str(e)
	}
	w.u32(uint32(len(s.InactiveEpochs)))
	for _, e := range s.InactiveEpochs {
		w.str(e)
	}
	w.u32(uint32(len(s.Queues)))
	for _, dq := range s.Queues {
		w.i32(dq.Device)
		w.u32(uint32(len(dq.Msgs)))
		for _, m := range dq.Msgs {
			w.str(m.Epoch)
			appendUpdates(&w, m.Updates)
		}
	}
	w.u32(uint32(len(s.Fed)))
	for _, dc := range s.Fed {
		w.i32(dc.Device)
		w.i32(dc.Count)
	}
	return w.buf
}

func decodeSubspace(buf []byte) (Subspace, error) {
	r := reader{buf: buf}
	s := Subspace{
		Index:    r.i32(),
		Epoch:    r.str(),
		BDD:      r.i32s(),
		PAT:      r.i32s(),
		Universe: r.i32(),
	}
	nec := r.count(8)
	for i := 0; i < nec && r.err == nil; i++ {
		s.ECs = append(s.ECs, ECPair{Vec: r.i32(), Pred: r.i32()})
	}
	ntb := r.count(8)
	for i := 0; i < ntb && r.err == nil; i++ {
		dt := DeviceTable{Device: r.i32()}
		nr := r.count(21)
		for j := 0; j < nr && r.err == nil; j++ {
			dt.Rules = append(dt.Rules, readRule(&r))
		}
		s.Tables = append(s.Tables, dt)
	}
	s.SyncOrder = r.i32s()
	ntl := r.count(8)
	for i := 0; i < ntl && r.err == nil; i++ {
		s.TrackerLast = append(s.TrackerLast, DevEpoch{Device: r.i32(), Epoch: r.str()})
	}
	nae := r.count(4)
	for i := 0; i < nae && r.err == nil; i++ {
		s.ActiveEpochs = append(s.ActiveEpochs, r.str())
	}
	nie := r.count(4)
	for i := 0; i < nie && r.err == nil; i++ {
		s.InactiveEpochs = append(s.InactiveEpochs, r.str())
	}
	nq := r.count(8)
	for i := 0; i < nq && r.err == nil; i++ {
		dq := DeviceQueue{Device: r.i32()}
		nm := r.count(8)
		for j := 0; j < nm && r.err == nil; j++ {
			dq.Msgs = append(dq.Msgs, QueuedMsg{Epoch: r.str(), Updates: readUpdates(&r)})
		}
		s.Queues = append(s.Queues, dq)
	}
	nf := r.count(8)
	for i := 0; i < nf && r.err == nil; i++ {
		s.Fed = append(s.Fed, DevCount{Device: r.i32(), Count: r.i32()})
	}
	if r.err != nil {
		return Subspace{}, r.err
	}
	if r.off != len(buf) {
		return Subspace{}, fmt.Errorf("ckpt: %d trailing bytes in subspace section: %w", len(buf)-r.off, ErrCorrupt)
	}
	return s, nil
}

// Encode serializes the checkpoint into the container format.
func (c *Checkpoint) Encode() []byte {
	buf := []byte(magic)
	buf = appendSection(buf, secMeta, encodeMeta(c.Meta))
	buf = appendSection(buf, secStreams, encodeStreams(c.Streams))
	buf = appendSection(buf, secVerdicts, encodeVerdicts(c.Verdicts))
	for _, s := range c.Subspaces {
		buf = appendSection(buf, secSubspace, encodeSubspace(s))
	}
	buf = appendSection(buf, secEnd, nil)
	return buf
}

// Decode parses a checkpoint container. Any structural violation — bad
// magic, short section, CRC mismatch, unparsable payload, or a missing
// END marker (a torn tail) — returns an error wrapping ErrCorrupt (or
// ErrBadVersion for a recognizable container of the wrong version).
// Decode never panics on hostile input.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) > MaxSize {
		return nil, fmt.Errorf("ckpt: %d bytes exceeds size limit: %w", len(data), ErrCorrupt)
	}
	if len(data) < len(magic) || string(data[:len(magic)-1]) != magic[:len(magic)-1] {
		return nil, fmt.Errorf("ckpt: bad magic: %w", ErrCorrupt)
	}
	if data[len(magic)-1] != magic[len(magic)-1] {
		return nil, fmt.Errorf("ckpt: container version %d: %w", data[len(magic)-1], ErrBadVersion)
	}
	c := &Checkpoint{}
	var sawMeta, sawEnd bool
	r := reader{buf: data, off: len(magic)}
	for r.err == nil && !sawEnd {
		typ := r.u32()
		length := r.u64()
		if r.err != nil {
			break
		}
		if length > uint64(r.remaining()) {
			return nil, fmt.Errorf("ckpt: section %d declares %d bytes beyond file end: %w", typ, length, ErrCorrupt)
		}
		payload := r.buf[r.off : r.off+int(length)]
		r.off += int(length)
		sum := r.u32()
		if r.err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("ckpt: section %d CRC mismatch: %w", typ, ErrCorrupt)
		}
		var err error
		switch typ {
		case secMeta:
			c.Meta, err = decodeMeta(payload)
			sawMeta = true
		case secStreams:
			c.Streams, err = decodeStreams(payload)
		case secVerdicts:
			c.Verdicts, err = decodeVerdicts(payload)
		case secSubspace:
			var s Subspace
			s, err = decodeSubspace(payload)
			if err == nil {
				c.Subspaces = append(c.Subspaces, s)
			}
		case secEnd:
			sawEnd = true
		default:
			// Unknown section types are skipped (forward compatibility):
			// the CRC already proved the payload intact.
		}
		if err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if !sawEnd {
		return nil, fmt.Errorf("ckpt: missing END marker (torn tail): %w", ErrCorrupt)
	}
	if !sawMeta {
		return nil, fmt.Errorf("ckpt: missing meta section: %w", ErrCorrupt)
	}
	return c, nil
}

// ---- file operations ----

const (
	filePrefix = "ckpt-"
	fileSuffix = ".fckpt"
)

// fileName derives the durable file name from the capture timestamp;
// the fixed-width hex encoding makes lexicographic order chronological.
func fileName(createdAtUnixNano int64) string {
	return fmt.Sprintf("%s%016x%s", filePrefix, uint64(createdAtUnixNano), fileSuffix)
}

// Save writes the checkpoint crash-consistently into dir: encode to a
// temp file, fsync it, atomically rename to the final name, fsync the
// directory. It returns the final path.
func Save(dir string, c *Checkpoint) (string, error) {
	data := c.Encode()
	final := filepath.Join(dir, fileName(c.Meta.CreatedAtUnixNano))
	tmp, err := os.CreateTemp(dir, filePrefix+"*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return final, nil
}

// Load reads and decodes one checkpoint file.
func Load(path string) (*Checkpoint, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.Size() > MaxSize {
		return nil, fmt.Errorf("ckpt: %s is %d bytes, exceeds size limit: %w", path, fi.Size(), ErrCorrupt)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Candidates lists the checkpoint files in dir, newest first. Temp files
// from interrupted writes are ignored (and are what Prune cleans up).
func Candidates(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, filePrefix) && strings.HasSuffix(n, fileSuffix) {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// Prune removes all but the newest keep checkpoints, plus any leftover
// temp files from interrupted writes.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	var firstErr error
	for i, p := range Candidates(dir) {
		if i < keep {
			continue
		}
		if err := os.Remove(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasPrefix(n, filePrefix) && strings.HasSuffix(n, ".tmp") {
				os.Remove(filepath.Join(dir, n))
			}
		}
	}
	return firstErr
}

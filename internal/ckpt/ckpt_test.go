package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
)

// sampleCheckpoint exercises every section and every field at least
// once, including empty and multi-element collections.
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Meta: Meta{CreatedAtUnixNano: 0x1122334455667788, ConfigHash: 0xdeadbeefcafef00d, Subspaces: 2, NVars: 16},
		Streams: map[string]uint64{
			"agent-1": 42,
			"agent-2": 1,
		},
		Verdicts: VerdictState{
			Seq: 7,
			Cells: []VerdictCell{
				{Spec: "loop-freedom", Subspace: 0, Epoch: "e3", Verdict: 0, Loop: 2, Witness: []uint64{3, 0}},
				{Spec: "reach", Subspace: 1, Epoch: "e2", Verdict: 1, Loop: 0, Witness: nil},
			},
		},
		Subspaces: []Subspace{
			{
				Index:    0,
				Epoch:    "e3",
				BDD:      []int32{0, 0, 1, 1, 0, 2},
				PAT:      []int32{1, 2, 0, 0},
				Universe: 2,
				ECs:      []ECPair{{Vec: 0, Pred: 2}, {Vec: 1, Pred: 3}},
				Tables: []DeviceTable{
					{Device: 1, Rules: []fib.Rule{{
						ID: 9, Pri: 10, Action: fib.Forward(2), Match: bdd.Ref(3),
					}}},
				},
				SyncOrder:      []int32{1, 0},
				TrackerLast:    []DevEpoch{{Device: 0, Epoch: "e3"}, {Device: 1, Epoch: "e3"}},
				ActiveEpochs:   []string{"e3"},
				InactiveEpochs: []string{"e1", "e2"},
				Queues: []DeviceQueue{
					{Device: 0, Msgs: []QueuedMsg{{Epoch: "e3", Updates: []fib.Update{
						{Op: fib.Insert, Rule: fib.Rule{ID: 1, Pri: 5, Action: fib.Drop, Match: 2,
							Desc: []fib.FieldMatch{{Field: "dst", Kind: fib.MatchPrefix, Value: 7, Len: 4, Mask: 0}}}},
					}}}},
					{Device: 1, Msgs: []QueuedMsg{{Epoch: "e3", Updates: nil}}},
				},
				Fed: []DevCount{{Device: 0, Count: 1}},
			},
			{Index: 1, Epoch: "e2"},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got.Meta, c.Meta) {
		t.Errorf("meta: got %+v want %+v", got.Meta, c.Meta)
	}
	if !reflect.DeepEqual(got.Streams, c.Streams) {
		t.Errorf("streams: got %v want %v", got.Streams, c.Streams)
	}
	if !reflect.DeepEqual(got.Verdicts, c.Verdicts) {
		t.Errorf("verdicts: got %+v want %+v", got.Verdicts, c.Verdicts)
	}
	if len(got.Subspaces) != len(c.Subspaces) {
		t.Fatalf("got %d subspaces, want %d", len(got.Subspaces), len(c.Subspaces))
	}
	for i := range c.Subspaces {
		want, have := c.Subspaces[i], got.Subspaces[i]
		if !reflect.DeepEqual(normalizeSubspace(want), normalizeSubspace(have)) {
			t.Errorf("subspace %d: got %+v want %+v", i, have, want)
		}
	}
}

// normalizeSubspace maps nil and empty slices to a comparable form (the
// codec does not distinguish them).
func normalizeSubspace(s Subspace) Subspace {
	if len(s.BDD) == 0 {
		s.BDD = nil
	}
	if len(s.PAT) == 0 {
		s.PAT = nil
	}
	if len(s.SyncOrder) == 0 {
		s.SyncOrder = nil
	}
	return s
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := sampleCheckpoint().Encode()

	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] ^= 0xFF
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[len(magic)-1] = 0x7F
		if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("torn tail", func(t *testing.T) {
		// Cut anywhere before the END section: either a section frame is
		// cut short or END goes missing — both must surface ErrCorrupt.
		for _, cut := range []int{len(magic) + 1, len(valid) / 2, len(valid) - 1} {
			if _, err := Decode(valid[:cut]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut at %d: err = %v, want ErrCorrupt", cut, err)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		// Flip every byte position (or a stride of them for big files):
		// decode must either fail with a typed error or — only when the
		// flip hits an ignorable region — return successfully. It must
		// never panic (the fuzz target hammers this harder).
		for i := len(magic); i < len(valid); i++ {
			b := append([]byte(nil), valid...)
			b[i] ^= 0x01
			_, err := Decode(b)
			if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadVersion) {
				t.Fatalf("flip at %d: untyped error %v", i, err)
			}
		}
	})
	t.Run("oversized declared length", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		// First section header sits right after the magic: type u32, then
		// length u64. Blow the length field up.
		off := len(magic) + 4
		for i := 0; i < 8; i++ {
			b[off+i] = 0xFF
		}
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestDecodeSkipsUnknownSections(t *testing.T) {
	c := sampleCheckpoint()
	buf := []byte(magic)
	buf = appendSection(buf, secMeta, encodeMeta(c.Meta))
	buf = appendSection(buf, 0x77, []byte("future section payload"))
	buf = appendSection(buf, secEnd, nil)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode with unknown section: %v", err)
	}
	if got.Meta != c.Meta {
		t.Fatalf("meta lost around unknown section")
	}
}

func TestSaveLoadCandidatesPrune(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 4; i++ {
		c := sampleCheckpoint()
		c.Meta.CreatedAtUnixNano = int64(1000 + i)
		p, err := Save(dir, c)
		if err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		paths = append(paths, p)
	}
	// A leftover temp file and an unrelated file must not be candidates.
	os.WriteFile(filepath.Join(dir, filePrefix+"zzz.tmp"), []byte("torn"), 0o644)
	os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("x"), 0o644)

	cands := Candidates(dir)
	if len(cands) != 4 {
		t.Fatalf("Candidates = %v, want 4 entries", cands)
	}
	if cands[0] != paths[3] || cands[3] != paths[0] {
		t.Fatalf("Candidates not newest-first: %v", cands)
	}
	c, err := Load(cands[0])
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if c.Meta.CreatedAtUnixNano != 1003 {
		t.Fatalf("loaded wrong checkpoint: %d", c.Meta.CreatedAtUnixNano)
	}

	if err := Prune(dir, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	cands = Candidates(dir)
	if len(cands) != 2 || cands[0] != paths[3] || cands[1] != paths[2] {
		t.Fatalf("after prune: %v", cands)
	}
	if _, err := os.Stat(filepath.Join(dir, filePrefix+"zzz.tmp")); !os.IsNotExist(err) {
		t.Fatal("prune left the temp file behind")
	}
	if _, err := os.Stat(filepath.Join(dir, "unrelated.txt")); err != nil {
		t.Fatal("prune removed an unrelated file")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, fileName(123))
	os.WriteFile(p, []byte("FLCKPT\x00\x01 torn garbage"), 0o644)
	if _, err := Load(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

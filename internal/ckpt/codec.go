package ckpt

import (
	"encoding/binary"
	"fmt"
)

// writer appends big-endian primitives to a buffer (the same cursor
// idiom as the wire codec; duplicated because the two formats must be
// able to evolve independently).
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }

func (w *writer) str(s string) {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF] // epochs and stream names are short; never hit
	}
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) i32s(vs []int32) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.i32(v)
	}
}

func (w *writer) u64s(vs []uint64) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}

// reader is a bounds-checked cursor over a section payload. The first
// out-of-bounds read latches err (wrapping ErrCorrupt); subsequent reads
// return zero values, so decode loops need only one final error check.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: section cut short reading %s at offset %d: %w", what, r.off, ErrCorrupt)
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a collection length and verifies the remaining payload can
// plausibly hold it (each element occupies at least elemSize bytes), so
// a hostile length can never drive a huge allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > r.remaining() {
		r.fail("collection length")
		return 0
	}
	return n
}

func (r *reader) i32s() []int32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

func (r *reader) u64s() []uint64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

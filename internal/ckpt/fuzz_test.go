package ckpt

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode asserts the restore path's core promise: no
// input — torn, bit-flipped, or adversarial — makes Decode panic, and
// every failure is a typed sentinel the restore loop can classify. A
// successfully decoded checkpoint must also re-encode and re-decode
// (the container round-trips whatever it accepts).
func FuzzCheckpointDecode(f *testing.F) {
	// Seeds: a fully populated valid checkpoint, truncations of it, a
	// bit-flipped body, version/magic damage, and degenerate inputs.
	valid := sampleCheckpoint().Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	badVersion := append([]byte(nil), valid...)
	badVersion[len(magic)-1] = 0x02
	f.Add(badVersion)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("FLCKPT\x00\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input must round-trip through our own encoder.
		again, err := Decode(c.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint failed: %v", err)
		}
		if again.Meta != c.Meta {
			t.Fatalf("meta changed across round trip: %+v vs %+v", again.Meta, c.Meta)
		}
		if len(again.Subspaces) != len(c.Subspaces) {
			t.Fatalf("subspace count changed across round trip")
		}
	})
}

package hs

import (
	"testing"

	"repro/internal/fib"
)

func TestCIDR(t *testing.T) {
	m, err := CIDR("dst", "10.0.1.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != fib.MatchPrefix || m.Len != 24 {
		t.Fatalf("CIDR = %+v", m)
	}
	if m.Value != 10<<24|1<<8 {
		t.Fatalf("value = %#x", m.Value)
	}
	for _, bad := range []string{"10.0.1.0", "::1/64", "300.0.0.0/8", "x/y"} {
		if _, err := CIDR("dst", bad); err == nil {
			t.Errorf("CIDR(%q) should fail", bad)
		}
	}
}

func TestMustCIDRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustCIDR("dst", "garbage")
}

func TestIPv4ValueAndFormat(t *testing.T) {
	v, err := IPv4Value("192.168.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if v != 192<<24|168<<16|1<<8|2 {
		t.Fatalf("value = %#x", v)
	}
	if got := FormatIPv4(v); got != "192.168.1.2" {
		t.Fatalf("FormatIPv4 = %q", got)
	}
	if _, err := IPv4Value("::1"); err == nil {
		t.Error("IPv6 accepted")
	}
	if _, err := IPv4Value("nope"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCIDRPredicate(t *testing.T) {
	s := NewSpace(Dst32)
	p, err := s.CIDRPredicate("dst", "10.0.1.0/24")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := IPv4Value("10.0.1.200")
	out, _ := IPv4Value("10.0.2.1")
	if !s.Contains(p, Header{in}) {
		t.Error("address inside the prefix not matched")
	}
	if s.Contains(p, Header{out}) {
		t.Error("address outside the prefix matched")
	}
	if _, err := s.CIDRPredicate("dst", "bad"); err == nil {
		t.Error("bad CIDR accepted")
	}
}

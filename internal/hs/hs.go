// Package hs models packet header spaces on top of the BDD engine.
//
// A Layout declares named header fields with bit widths (e.g. a 32-bit
// destination IP followed by a 16-bit source prefix and an 8-bit protocol);
// a Space binds a Layout to a bdd.Engine and compiles matches — exact
// values, IP-style prefixes, generic ternary value/mask pairs, and integer
// ranges — into canonical BDD predicates. Variable order is field-major
// and most-significant-bit-first within a field, which keeps prefix
// predicates linear-size.
package hs

import (
	"fmt"

	"repro/internal/bdd"
)

// Field is one named header field.
type Field struct {
	Name string
	Bits int
}

// Layout is an ordered list of header fields. The order determines BDD
// variable order: earlier fields get lower (closer-to-root) variables.
type Layout struct {
	fields  []Field
	offsets []int // starting variable index per field
	index   map[string]int
	total   int
}

// NewLayout builds a Layout from the given fields. Field names must be
// unique and widths positive; the total width must be at most 64 bits per
// field (values are carried in uint64s).
func NewLayout(fields ...Field) *Layout {
	l := &Layout{index: make(map[string]int, len(fields))}
	for _, f := range fields {
		if f.Bits <= 0 || f.Bits > 64 {
			panic(fmt.Sprintf("hs: field %q has invalid width %d", f.Name, f.Bits))
		}
		if _, dup := l.index[f.Name]; dup {
			panic(fmt.Sprintf("hs: duplicate field %q", f.Name))
		}
		l.index[f.Name] = len(l.fields)
		l.offsets = append(l.offsets, l.total)
		l.fields = append(l.fields, f)
		l.total += f.Bits
	}
	return l
}

// TotalBits is the number of Boolean variables the layout occupies.
func (l *Layout) TotalBits() int { return l.total }

// Fields returns the layout's fields in declaration order.
func (l *Layout) Fields() []Field { return l.fields }

// FieldBits returns the width of the named field.
func (l *Layout) FieldBits(name string) int {
	return l.fields[l.mustIndex(name)].Bits
}

func (l *Layout) mustIndex(name string) int {
	i, ok := l.index[name]
	if !ok {
		panic(fmt.Sprintf("hs: unknown field %q", name))
	}
	return i
}

// Common layouts used by the workloads in the evaluation.
var (
	// Dst32 is a single 32-bit destination address, the layout of the
	// LNet-apsp and trace settings.
	Dst32 = NewLayout(Field{"dst", 32})
	// SrcDst uses a 16-bit source and 16-bit destination, the layout of
	// the LNet-ecmp (source-match ECMP) setting, scaled so Delta-net*'s
	// interval expansion stays finite on one machine.
	SrcDst = NewLayout(Field{"src", 16}, Field{"dst", 16})
	// DstProto adds an 8-bit protocol/port selector to the destination,
	// used by policy rules (e.g. "HTTP to subnet A").
	DstProto = NewLayout(Field{"dst", 32}, Field{"proto", 8})
)

// Space binds a Layout to a BDD engine and caches per-bit variables.
type Space struct {
	E      *bdd.Engine
	Layout *Layout
	vars   []bdd.Ref // vars[i] = predicate "bit i is 1"
}

// NewSpace creates a Space and its backing engine.
func NewSpace(l *Layout) *Space {
	e := bdd.New(l.TotalBits())
	return NewSpaceOn(e, l)
}

// NewSpaceOn binds a layout to an existing engine, which must have at
// least Layout.TotalBits variables.
func NewSpaceOn(e *bdd.Engine, l *Layout) *Space {
	if e.NumVars() < l.TotalBits() {
		panic("hs: engine has too few variables for layout")
	}
	s := &Space{E: e, Layout: l, vars: make([]bdd.Ref, l.TotalBits())}
	for i := range s.vars {
		s.vars[i] = e.Var(i)
	}
	return s
}

// bitVar returns the variable index of the b-th most significant bit of
// the named field.
func (s *Space) bitVar(fieldIdx, b int) int {
	return s.Layout.offsets[fieldIdx] + b
}

// Exact returns the predicate matching field == value exactly.
func (s *Space) Exact(field string, value uint64) bdd.Ref {
	fi := s.Layout.mustIndex(field)
	return s.prefixAt(fi, value, s.Layout.fields[fi].Bits)
}

// Prefix returns the predicate for a prefix match on the field: the top
// plen bits of the field must equal the top plen bits of value (value is
// right-aligned, i.e. a full-width field value whose low bits are ignored).
// Prefix(f, v, 0) matches everything.
func (s *Space) Prefix(field string, value uint64, plen int) bdd.Ref {
	fi := s.Layout.mustIndex(field)
	w := s.Layout.fields[fi].Bits
	if plen < 0 || plen > w {
		panic(fmt.Sprintf("hs: prefix length %d out of range for %d-bit field", plen, w))
	}
	return s.prefixAt(fi, value>>uint(w-plen), plen)
}

// prefixAt matches the top plen bits of the field against the low plen
// bits of topBits.
func (s *Space) prefixAt(fieldIdx int, topBits uint64, plen int) bdd.Ref {
	if plen == 0 {
		return bdd.True
	}
	vars := make([]int, plen)
	var bits uint64
	for i := 0; i < plen; i++ {
		vars[i] = s.bitVar(fieldIdx, i)
		// Most significant selected bit first.
		if topBits&(1<<uint(plen-1-i)) != 0 {
			bits |= 1 << uint(i)
		}
	}
	return s.E.Cube(vars, bits)
}

// Ternary returns the predicate for a value/mask match on the field: for
// every bit set in mask, the field bit must equal the corresponding bit of
// value. mask bit positions follow the field's natural value encoding
// (bit 0 = least significant).
func (s *Space) Ternary(field string, value, mask uint64) bdd.Ref {
	fi := s.Layout.mustIndex(field)
	w := s.Layout.fields[fi].Bits
	var vars []int
	var bits uint64
	n := 0
	for i := 0; i < w; i++ { // i = msb index within field
		bitpos := uint(w - 1 - i)
		if mask&(1<<bitpos) == 0 {
			continue
		}
		vars = append(vars, s.bitVar(fi, i))
		if value&(1<<bitpos) != 0 {
			bits |= 1 << uint(n)
		}
		n++
	}
	return s.E.Cube(vars, bits)
}

// Suffix returns the predicate matching the low slen bits of the field
// against the low slen bits of value. This is the "suffix match routing"
// rule form of the LNet-smr setting.
func (s *Space) Suffix(field string, value uint64, slen int) bdd.Ref {
	fi := s.Layout.mustIndex(field)
	w := s.Layout.fields[fi].Bits
	if slen < 0 || slen > w {
		panic(fmt.Sprintf("hs: suffix length %d out of range for %d-bit field", slen, w))
	}
	var mask uint64
	if slen == 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << uint(slen)) - 1
	}
	return s.Ternary(field, value&mask, mask)
}

// Range returns the predicate lo <= field <= hi (inclusive), built as a
// union of O(width) prefix cubes.
func (s *Space) Range(field string, lo, hi uint64) bdd.Ref {
	fi := s.Layout.mustIndex(field)
	w := s.Layout.fields[fi].Bits
	max := maxValue(w)
	if lo > hi || hi > max {
		panic(fmt.Sprintf("hs: invalid range [%d,%d] for %d-bit field", lo, hi, w))
	}
	r := bdd.False
	for _, c := range rangeCubes(lo, hi, w) {
		r = s.E.Or(r, s.prefixAt(fi, c.top, c.plen))
	}
	return r
}

// LineRange compiles the half-open interval [lo, hi) on the concatenated
// header line (fields in layout order, earlier fields in higher-order
// bits — the encoding deltanet.IntervalsFor and the atom engine use)
// into a predicate: a disjunction of at most 2W line-level prefix cubes.
// The hybrid cutover uses it to recompile each interval of a live atom
// predicate into BDD form. An empty interval (hi <= lo) yields False.
func (s *Space) LineRange(lo, hi uint64) bdd.Ref {
	if hi <= lo {
		return bdd.False
	}
	w := s.Layout.TotalBits()
	if max := maxValue(w); hi-1 > max {
		panic(fmt.Sprintf("hs: line interval [%d,%d) outside the %d-bit line", lo, hi, w))
	}
	r := bdd.False
	for _, c := range rangeCubes(lo, hi-1, w) {
		r = s.E.Or(r, s.linePrefix(c.top, c.plen))
	}
	return r
}

// linePrefix builds the cube matching the top plen bits of the line
// against the low plen bits of top. Variable i is exactly line bit i
// (most significant first), so the cube spans variables [0, plen).
func (s *Space) linePrefix(top uint64, plen int) bdd.Ref {
	if plen == 0 {
		return bdd.True
	}
	vars := make([]int, plen)
	var bits uint64
	for i := 0; i < plen; i++ {
		vars[i] = i
		if top&(1<<uint(plen-1-i)) != 0 {
			bits |= 1 << uint(i)
		}
	}
	return s.E.Cube(vars, bits)
}

func maxValue(bits int) uint64 {
	if bits == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(bits)) - 1
}

type cube struct {
	top  uint64 // the plen significant bits
	plen int
}

// rangeCubes decomposes [lo,hi] into at most 2w prefix cubes.
func rangeCubes(lo, hi uint64, w int) []cube {
	var out []cube
	var rec func(lo, hi, base uint64, bits int)
	rec = func(lo, hi, base uint64, bits int) {
		if lo > hi {
			return
		}
		if lo == 0 && hi == maxValue(bits) {
			out = append(out, cube{top: base >> uint(bits), plen: w - bits})
			return
		}
		if bits == 0 {
			out = append(out, cube{top: base, plen: w})
			return
		}
		half := uint64(1) << uint(bits-1)
		if hi < half {
			rec(lo, hi, base, bits-1)
		} else if lo >= half {
			rec(lo-half, hi-half, base|half, bits-1)
		} else {
			rec(lo, half-1, base, bits-1)
			rec(0, hi-half, base|half, bits-1)
		}
	}
	rec(lo, hi, 0, w)
	return out
}

// Header is a concrete packet header: one value per field, in layout order.
type Header []uint64

// Assignment converts a header to the engine's Boolean assignment vector,
// for use with bdd.Engine.Eval.
func (s *Space) Assignment(h Header) []bool {
	if len(h) != len(s.Layout.fields) {
		panic("hs: header has wrong number of fields")
	}
	a := make([]bool, s.E.NumVars())
	for fi, f := range s.Layout.fields {
		for b := 0; b < f.Bits; b++ { // b = msb-first index
			if h[fi]&(1<<uint(f.Bits-1-b)) != 0 {
				a[s.bitVar(fi, b)] = true
			}
		}
	}
	return a
}

// Assignment converts a header to a line-bit assignment without a Space:
// the slice has exactly TotalBits entries, variable i = line bit i (most
// significant first). Atom-mode subspaces, which have no hs.Space, use
// this for point queries and witness extraction; it agrees bit-for-bit
// with Space.Assignment on the layout's variables.
func (l *Layout) Assignment(h Header) []bool {
	if len(h) != len(l.fields) {
		panic("hs: header has wrong number of fields")
	}
	a := make([]bool, l.total)
	for fi, f := range l.fields {
		for b := 0; b < f.Bits; b++ { // b = msb-first index
			if h[fi]&(1<<uint(f.Bits-1-b)) != 0 {
				a[l.offsets[fi]+b] = true
			}
		}
	}
	return a
}

// Contains reports whether predicate p matches header h.
func (s *Space) Contains(p bdd.Ref, h Header) bool {
	return s.E.Eval(p, s.Assignment(h))
}

// Roots yields the per-bit variable predicates, for the engine's
// mark-and-sweep GC root set. Variable nodes are single-node BDDs the
// engine would re-mint on first use anyway, but keeping them live means
// cached vars never dangle across a collection.
func (s *Space) Roots(yield func(bdd.Ref)) {
	for _, v := range s.vars {
		yield(v)
	}
}

// RemapRefs rewrites the cached variable predicates through a GC remap.
func (s *Space) RemapRefs(m bdd.Remap) {
	for i := range s.vars {
		s.vars[i] = m.Apply(s.vars[i])
	}
}

package hs

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fib"
)

// Compile turns a symbolic match descriptor into its BDD predicate: the
// conjunction of the per-field constraints. An empty descriptor compiles
// to True (match-all).
func (s *Space) Compile(d fib.MatchDesc) bdd.Ref {
	p := bdd.True
	for _, f := range d {
		var fp bdd.Ref
		switch f.Kind {
		case fib.MatchPrefix:
			fp = s.Prefix(f.Field, f.Value, f.Len)
		case fib.MatchTernary:
			fp = s.Ternary(f.Field, f.Value, f.Mask)
		default:
			panic(fmt.Sprintf("hs: unknown match kind %d", f.Kind))
		}
		p = s.E.And(p, fp)
	}
	return p
}

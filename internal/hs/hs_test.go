package hs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
)

func TestLayoutBasics(t *testing.T) {
	l := NewLayout(Field{"a", 8}, Field{"b", 4})
	if l.TotalBits() != 12 {
		t.Errorf("TotalBits = %d, want 12", l.TotalBits())
	}
	if l.FieldBits("b") != 4 {
		t.Errorf("FieldBits(b) = %d, want 4", l.FieldBits("b"))
	}
	if len(l.Fields()) != 2 || l.Fields()[0].Name != "a" {
		t.Error("Fields() wrong")
	}
}

func TestLayoutPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero width": func() { NewLayout(Field{"x", 0}) },
		"too wide":   func() { NewLayout(Field{"x", 65}) },
		"duplicate":  func() { NewLayout(Field{"x", 4}, Field{"x", 4}) },
		"unknown":    func() { NewLayout(Field{"x", 4}).FieldBits("y") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExactMatch(t *testing.T) {
	s := NewSpace(NewLayout(Field{"dst", 8}))
	p := s.Exact("dst", 0xAB)
	if !s.Contains(p, Header{0xAB}) {
		t.Error("exact match misses its own value")
	}
	for _, v := range []uint64{0, 0xAA, 0xBA, 0xFF} {
		if s.Contains(p, Header{v}) {
			t.Errorf("exact match falsely matches %#x", v)
		}
	}
	if s.E.SatCount(p) != 1 {
		t.Errorf("SatCount of exact match = %v, want 1", s.E.SatCount(p))
	}
}

func TestPrefixMatch(t *testing.T) {
	s := NewSpace(NewLayout(Field{"dst", 8}))
	// 0b1010xxxx
	p := s.Prefix("dst", 0xA0, 4)
	for v := uint64(0); v < 256; v++ {
		want := v>>4 == 0xA
		if got := s.Contains(p, Header{v}); got != want {
			t.Fatalf("prefix 0xA0/4 on %#x: got %v want %v", v, got, want)
		}
	}
	if s.Prefix("dst", 0x12, 0) != bdd.True {
		t.Error("zero-length prefix should match everything")
	}
	if s.E.SatCount(p) != 16 {
		t.Errorf("SatCount = %v, want 16", s.E.SatCount(p))
	}
}

func TestTernaryMatch(t *testing.T) {
	s := NewSpace(NewLayout(Field{"dst", 8}))
	// match bit7=1 and bit0=0: value 0x80, mask 0x81
	p := s.Ternary("dst", 0x80, 0x81)
	for v := uint64(0); v < 256; v++ {
		want := v&0x81 == 0x80
		if got := s.Contains(p, Header{v}); got != want {
			t.Fatalf("ternary on %#x: got %v want %v", v, got, want)
		}
	}
	if s.Ternary("dst", 0, 0) != bdd.True {
		t.Error("all-wildcard ternary should be True")
	}
}

func TestSuffixMatch(t *testing.T) {
	s := NewSpace(NewLayout(Field{"dst", 8}))
	p := s.Suffix("dst", 0b101, 3)
	for v := uint64(0); v < 256; v++ {
		want := v&0b111 == 0b101
		if got := s.Contains(p, Header{v}); got != want {
			t.Fatalf("suffix on %#x: got %v want %v", v, got, want)
		}
	}
	if s.E.SatCount(p) != 32 {
		t.Errorf("SatCount = %v, want 32", s.E.SatCount(p))
	}
}

func TestRangeMatch(t *testing.T) {
	s := NewSpace(NewLayout(Field{"port", 10}))
	cases := []struct{ lo, hi uint64 }{
		{0, 0}, {0, 1023}, {5, 5}, {100, 200}, {511, 512}, {1, 1022}, {1000, 1023},
	}
	for _, c := range cases {
		p := s.Range("port", c.lo, c.hi)
		if got, want := s.E.SatCount(p), float64(c.hi-c.lo+1); got != want {
			t.Errorf("Range[%d,%d] SatCount = %v, want %v", c.lo, c.hi, got, want)
		}
		for _, v := range []uint64{c.lo, c.hi, (c.lo + c.hi) / 2} {
			if !s.Contains(p, Header{v}) {
				t.Errorf("Range[%d,%d] misses %d", c.lo, c.hi, v)
			}
		}
		if c.lo > 0 && s.Contains(p, Header{c.lo - 1}) {
			t.Errorf("Range[%d,%d] matches %d", c.lo, c.hi, c.lo-1)
		}
		if c.hi < 1023 && s.Contains(p, Header{c.hi + 1}) {
			t.Errorf("Range[%d,%d] matches %d", c.lo, c.hi, c.hi+1)
		}
	}
}

func TestRangeQuick(t *testing.T) {
	s := NewSpace(NewLayout(Field{"f", 8}))
	check := func(a, b, probe uint8) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		p := s.Range("f", lo, hi)
		v := uint64(probe)
		return s.Contains(p, Header{v}) == (v >= lo && v <= hi)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRangePanicsOnInvalid(t *testing.T) {
	s := NewSpace(NewLayout(Field{"f", 8}))
	for name, f := range map[string]func(){
		"lo>hi":     func() { s.Range("f", 5, 2) },
		"too large": func() { s.Range("f", 0, 256) },
		"prefix":    func() { s.Prefix("f", 0, 9) },
		"suffix":    func() { s.Suffix("f", 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMultiFieldIndependence(t *testing.T) {
	s := NewSpace(NewLayout(Field{"src", 8}, Field{"dst", 8}))
	p := s.E.And(s.Prefix("src", 0x10, 4), s.Prefix("dst", 0x20, 4))
	if !s.Contains(p, Header{0x1F, 0x2F}) {
		t.Error("conjunction of per-field prefixes should match")
	}
	if s.Contains(p, Header{0x2F, 0x2F}) {
		t.Error("src constraint not enforced")
	}
	if s.Contains(p, Header{0x1F, 0x1F}) {
		t.Error("dst constraint not enforced")
	}
	if got := s.E.SatCount(p); got != 256 {
		t.Errorf("SatCount = %v, want 256", got)
	}
}

func TestSharedEngineSpaces(t *testing.T) {
	e := bdd.New(64)
	s := NewSpaceOn(e, SrcDst)
	p := s.Prefix("dst", 0x1234, 8)
	if p == bdd.False {
		t.Fatal("prefix compiled to False")
	}
	if !s.Contains(p, Header{0, 0x12FF}) {
		t.Error("shared-engine space mismatch")
	}
}

func TestNewSpaceOnPanicsWhenTooSmall(t *testing.T) {
	e := bdd.New(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSpaceOn(e, Dst32)
}

func TestAssignmentPanicsOnWrongArity(t *testing.T) {
	s := NewSpace(SrcDst)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Assignment(Header{1})
}

func TestPrefixDisjointness(t *testing.T) {
	// Sibling prefixes are disjoint and their union is the parent.
	s := NewSpace(NewLayout(Field{"dst", 16}))
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		plen := 1 + rng.Intn(14)
		base := uint64(rng.Intn(1<<uint(plen))) << uint(16-plen)
		parent := s.Prefix("dst", base, plen)
		l := s.Prefix("dst", base, plen+1)
		step := uint64(1) << uint(16-plen-1)
		r := s.Prefix("dst", base|step, plen+1)
		if s.E.And(l, r) != bdd.False {
			t.Fatal("sibling prefixes overlap")
		}
		if s.E.Or(l, r) != parent {
			t.Fatal("siblings do not cover parent")
		}
	}
}

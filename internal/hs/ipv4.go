package hs

import (
	"fmt"
	"net/netip"

	"repro/internal/bdd"

	"repro/internal/fib"
)

// IPv4 convenience layer: real deployments describe matches in CIDR
// notation. These helpers convert between netip types and the symbolic
// match descriptors the engines consume. They require the target field
// to be 32 bits wide (use Dst32 or DstProto, or declare your own).

// CIDR builds a prefix constraint on a 32-bit field from "a.b.c.d/len"
// notation.
func CIDR(field, cidr string) (fib.FieldMatch, error) {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return fib.FieldMatch{}, fmt.Errorf("hs: %w", err)
	}
	if !p.Addr().Is4() {
		return fib.FieldMatch{}, fmt.Errorf("hs: %q is not IPv4", cidr)
	}
	b := p.Addr().As4()
	val := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	return fib.FieldMatch{Field: field, Kind: fib.MatchPrefix, Value: val, Len: p.Bits()}, nil
}

// MustCIDR is CIDR for statically known prefixes; it panics on error.
func MustCIDR(field, cidr string) fib.FieldMatch {
	m, err := CIDR(field, cidr)
	if err != nil {
		panic(err)
	}
	return m
}

// IPv4Value converts a dotted-quad address into the field value used by
// Header and Exact.
func IPv4Value(addr string) (uint64, error) {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return 0, fmt.Errorf("hs: %w", err)
	}
	if !a.Is4() {
		return 0, fmt.Errorf("hs: %q is not IPv4", addr)
	}
	b := a.As4()
	return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3]), nil
}

// FormatIPv4 renders a 32-bit field value in dotted-quad notation, for
// witness headers in results.
func FormatIPv4(v uint64) string {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}).String()
}

// CIDRPredicate compiles a CIDR straight to a predicate on this space.
func (s *Space) CIDRPredicate(field, cidr string) (bdd.Ref, error) {
	m, err := CIDR(field, cidr)
	if err != nil {
		return bdd.False, err
	}
	return s.Prefix(m.Field, m.Value, m.Len), nil
}

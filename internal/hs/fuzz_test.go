package hs_test

import (
	"fmt"
	"testing"

	"repro/internal/bdd"
	"repro/internal/hs"
)

// FuzzPrefixParse cross-checks the three match-compilation paths
// (prefix, ternary, range) against their arithmetic definitions, and
// the IPv4 CIDR round-trip against the prefix predicate. Each compiled
// predicate must contain exactly the headers its definition admits —
// these predicates are the leaves every verification result is built
// from, so a single wrong bit here is a silently wrong data plane.
func FuzzPrefixParse(f *testing.F) {
	f.Add(uint32(0xC0A80100), uint8(24), uint16(100), uint16(200), uint16(0x1234), uint16(0xFF00))
	f.Add(uint32(0), uint8(0), uint16(0), uint16(0xFFFF), uint16(0), uint16(0))
	f.Add(uint32(0xFFFFFFFF), uint8(32), uint16(7), uint16(7), uint16(0xFFFF), uint16(0xFFFF))
	f.Add(uint32(0x0A000001), uint8(8), uint16(400), uint16(300), uint16(0x00FF), uint16(0x0F0F))

	f.Fuzz(func(t *testing.T, v uint32, plen8 uint8, lo, hi, tv, tm uint16) {
		plen := int(plen8 % 33)

		// --- 32-bit destination field: prefix + CIDR round-trip. ---
		s32 := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 32}))
		p := s32.Prefix("dst", uint64(v), plen)

		cidr := fmt.Sprintf("%s/%d", hs.FormatIPv4(uint64(v)), plen)
		m, err := hs.CIDR("dst", cidr)
		if err != nil {
			t.Fatalf("CIDR(%q): %v", cidr, err)
		}
		if m.Value != uint64(v) || m.Len != plen {
			t.Fatalf("CIDR(%q) = (value %#x, len %d), want (%#x, %d)", cidr, m.Value, m.Len, v, plen)
		}
		if got, err := hs.IPv4Value(hs.FormatIPv4(uint64(v))); err != nil || got != uint64(v) {
			t.Fatalf("IPv4Value(FormatIPv4(%#x)) = %#x, %v", v, got, err)
		}
		if q, err := s32.CIDRPredicate("dst", cidr); err != nil || q != p {
			t.Fatalf("CIDRPredicate(%q) = %d, %v; want Prefix ref %d", cidr, q, err, p)
		}

		// Membership matches the arithmetic definition on probe headers.
		probes := []uint64{uint64(v), uint64(v) ^ 1, uint64(v) ^ (1 << 31), uint64(v) + 1, 0, 1<<32 - 1}
		for _, h := range probes {
			h &= 1<<32 - 1
			want := plen == 0 || h>>(32-plen) == uint64(v)>>(32-plen)
			if got := s32.Contains(p, hs.Header{h}); got != want {
				t.Fatalf("Prefix(%#x/%d) contains %#x = %v, want %v", v, plen, h, got, want)
			}
		}
		// |prefix| = 2^(32-plen) headers.
		if got, want := s32.E.SatCount(p), float64(uint64(1)<<(32-plen)); got != want {
			t.Fatalf("SatCount(Prefix(%#x/%d)) = %g, want %g", v, plen, got, want)
		}

		// --- 16-bit field: ternary and range. ---
		s16 := hs.NewSpace(hs.NewLayout(hs.Field{Name: "f", Bits: 16}))
		tern := s16.Ternary("f", uint64(tv), uint64(tm))
		if lo > hi {
			lo, hi = hi, lo
		}
		rng := s16.Range("f", uint64(lo), uint64(hi))

		probes16 := []uint64{uint64(tv), uint64(tv) ^ 1, uint64(lo), uint64(hi), uint64(lo) - 1, uint64(hi) + 1, 0, 0xFFFF}
		for _, h := range probes16 {
			h &= 0xFFFF
			if got, want := s16.Contains(tern, hs.Header{h}), h&uint64(tm) == uint64(tv)&uint64(tm); got != want {
				t.Fatalf("Ternary(%#x/%#x) contains %#x = %v, want %v", tv, tm, h, got, want)
			}
			if got, want := s16.Contains(rng, hs.Header{h}), uint64(lo) <= h && h <= uint64(hi); got != want {
				t.Fatalf("Range[%d,%d] contains %#x = %v, want %v", lo, hi, h, got, want)
			}
		}
		if got, want := s16.E.SatCount(rng), float64(hi)-float64(lo)+1; got != want {
			t.Fatalf("SatCount(Range[%d,%d]) = %g, want %g", lo, hi, got, want)
		}

		// A witness of any non-empty predicate must be a member.
		if tern != bdd.False && !s16.E.Eval(tern, s16.E.AnySat(tern)) {
			t.Fatal("AnySat witness rejected by ternary predicate")
		}
		if rng != bdd.False && !s16.E.Eval(rng, s16.E.AnySat(rng)) {
			t.Fatal("AnySat witness rejected by range predicate")
		}
		if p != bdd.False && !s32.E.Eval(p, s32.E.AnySat(p)) {
			t.Fatal("AnySat witness rejected by prefix predicate")
		}
	})
}

// Package rewrite implements the header-rewrite extension sketched in §7
// of the paper ("Data Plane Models"): devices that rewrite a header field
// (NAT, tunnel relabeling) before forwarding.
//
// The paper outlines two directions; this package implements the first —
// "guarantee that any packet, if rewritten, belongs to exactly one EC
// before and after the rewrite" — on top of the inverse model:
//
//   - A rewrite rule sets one field to a constant ("dst := v") for the
//     headers it matches, then forwards. Its image on a predicate p is
//     computed with BDD quantification: image(p) = ∃fieldBits.p ∧
//     (field = v).
//   - Validate checks the §7 well-formedness condition against a model:
//     every rewrite's pre-image lies within one equivalence class, and
//     its image lands within one equivalence class.
//   - Walk traces a concrete header through the data plane, applying
//     rewrites, for rewrite-aware reachability and loop checks.
package rewrite

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/pat"
	"repro/internal/pred"
)

// Rule is one header-rewrite rule on a device: headers matching Match
// have Field set to Value and are then forwarded per Next.
//
//flashvet:allow bddref — Match is expressed in the engine of the Transformer the rule set is applied to
//flashvet:allow gcroot — rewrite rule sets are caller-owned inputs consumed during Expand; the caller's root set covers them
type Rule struct {
	Device fib.DeviceID
	Match  bdd.Ref
	Field  string
	Value  uint64
	Next   fib.Action
}

// Set rewrites the header-rewrite rules of a data plane.
type Set struct {
	space *hs.Space
	rules map[fib.DeviceID][]Rule
	// fieldVars caches each field's BDD variable list.
	fieldVars map[string][]int
}

// NewSet creates an empty rewrite set over the space.
func NewSet(space *hs.Space) *Set {
	return &Set{
		space:     space,
		rules:     make(map[fib.DeviceID][]Rule),
		fieldVars: make(map[string][]int),
	}
}

// Add installs a rewrite rule. Rules on one device are checked in
// insertion order; the first match wins.
func (s *Set) Add(r Rule) error {
	if r.Match == bdd.False {
		return fmt.Errorf("rewrite: empty match")
	}
	w := s.space.Layout.FieldBits(r.Field) // panics on unknown field
	if r.Value >= 1<<uint(w) {
		return fmt.Errorf("rewrite: value %#x exceeds %d-bit field %q", r.Value, w, r.Field)
	}
	s.rules[r.Device] = append(s.rules[r.Device], r)
	return nil
}

// vars returns the BDD variables of a field, cached.
func (s *Set) vars(field string) []int {
	if v, ok := s.fieldVars[field]; ok {
		return v
	}
	// Variables are assigned field-major in layout order.
	off := 0
	var out []int
	for _, f := range s.space.Layout.Fields() {
		if f.Name == field {
			for b := 0; b < f.Bits; b++ {
				out = append(out, off+b)
			}
			break
		}
		off += f.Bits
	}
	s.fieldVars[field] = out
	return out
}

// Image computes the header set a rewrite rule produces from input
// predicate p: quantify the rewritten field away and pin it to the new
// value.
func (s *Set) Image(r Rule, p bdd.Ref) bdd.Ref {
	e := s.space.E
	pre := e.And(p, r.Match)
	if pre == bdd.False {
		return bdd.False
	}
	q := e.Exists(pre, s.vars(r.Field))
	return e.And(q, s.space.Exact(r.Field, r.Value))
}

// Violation describes a failed §7 well-formedness check.
type Violation struct {
	Rule   Rule
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("rewrite on device %d (%s := %#x): %s",
		v.Rule.Device, v.Rule.Field, v.Rule.Value, v.Reason)
}

// Validate checks the §7 condition against an inverse model: every
// rewrite's pre-image must lie within exactly one equivalence class, and
// its image must land within exactly one equivalence class. Rewrites that
// straddle classes would need the recursive-query extension instead.
func (s *Set) Validate(m *imt.Model) []Violation {
	e := s.space.E
	var out []Violation
	for _, rules := range s.rules {
		for _, r := range rules {
			pre := e.And(r.Match, m.Universe)
			if pre == bdd.False {
				continue
			}
			if n := countIntersecting(e, m, pre); n != 1 {
				out = append(out, Violation{r, fmt.Sprintf("pre-image spans %d equivalence classes", n)})
			}
			img := s.Image(r, m.Universe)
			if n := countIntersecting(e, m, img); n > 1 {
				out = append(out, Violation{r, fmt.Sprintf("image spans %d equivalence classes", n)})
			}
		}
	}
	return out
}

func countIntersecting(e pred.Engine, m *imt.Model, p bdd.Ref) int {
	n := 0
	for _, pred := range m.ECs {
		if e.Overlaps(pred, p) {
			n++
		}
	}
	return n
}

// Hop is one step of a rewrite-aware walk.
type Hop struct {
	Device    fib.DeviceID
	Header    hs.Header // header as it arrived at the device
	Rewritten bool
}

// WalkResult is the outcome of a concrete-header trace.
type WalkResult uint8

// Walk outcomes.
const (
	// Delivered: the packet reached a delivery action.
	Delivered WalkResult = iota
	// Dropped: a device dropped the packet.
	Dropped
	// Looped: the walk revisited a (device, header) pair.
	Looped
)

func (w WalkResult) String() string {
	switch w {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	default:
		return "looped"
	}
}

// Walk traces a concrete header from a device through the data plane,
// applying rewrites: at each device, the first matching rewrite rule (if
// any) transforms the header and dictates the next hop; otherwise the
// FIB's behavior applies. Loop detection is on (device, header) pairs —
// a rewrite legitimately allows revisiting a device with a new header.
func (s *Set) Walk(tr *imt.Transformer, store *pat.Store, start fib.DeviceID, h hs.Header, maxDevices int) (WalkResult, []Hop) {
	type key struct {
		dev fib.DeviceID
		sig string
	}
	e := s.space.E
	seen := map[key]bool{}
	cur := start
	hdr := append(hs.Header(nil), h...)
	var hops []Hop
	for {
		sig := fmt.Sprint(hdr)
		k := key{cur, sig}
		if seen[k] {
			return Looped, hops
		}
		seen[k] = true

		// Rewrite rules first (they model the device's NAT stage).
		rewrote := false
		var next fib.Action
		for _, r := range s.rules[cur] {
			if s.space.Contains(r.Match, hdr) {
				hdr = s.applyRewrite(r, hdr)
				next = r.Next
				rewrote = true
				break
			}
		}
		hops = append(hops, Hop{Device: cur, Header: append(hs.Header(nil), hdr...), Rewritten: rewrote})
		if !rewrote {
			asg := s.space.Assignment(hdr)
			vec, ok := tr.Model().Lookup(e, asg)
			if !ok {
				return Dropped, hops
			}
			next = store.Get(vec, cur)
		}
		nh, fwd := next.NextHop()
		switch {
		case !fwd:
			return Dropped, hops
		case int(nh) >= maxDevices:
			return Delivered, hops
		default:
			cur = nh
		}
	}
}

func (s *Set) applyRewrite(r Rule, h hs.Header) hs.Header {
	out := append(hs.Header(nil), h...)
	for i, f := range s.space.Layout.Fields() {
		if f.Name == r.Field {
			out[i] = r.Value
			break
		}
	}
	return out
}

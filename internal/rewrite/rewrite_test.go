package rewrite

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/pat"
)

// natRig: clients (dst 0x0X = VIP) — lb — server (dst 0x8Y). The load
// balancer rewrites the VIP destination to the server's address, like the
// Maglev-style deployments §7 cites.
type natRig struct {
	space *hs.Space
	store *pat.Store
	tr    *imt.Transformer
	set   *Set
}

const (
	client fib.DeviceID = 0
	lb     fib.DeviceID = 1
	server fib.DeviceID = 2
	nDev                = 3
)

func newNATRig(t *testing.T) *natRig {
	t.Helper()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	store := pat.NewStore()
	tr := imt.NewTransformer(space.E, store, bdd.True)
	vip := space.Exact("dst", 0x01)
	serverAddr := space.Exact("dst", 0x81)
	blocks := []fib.Block{
		{Device: client, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: vip, Pri: 1, Action: fib.Forward(lb)}},
		}},
		{Device: lb, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: serverAddr, Pri: 1, Action: fib.Forward(server)}},
		}},
		{Device: server, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: serverAddr, Pri: 1, Action: fib.Forward(nDev)}},
		}},
	}
	if err := tr.ApplyBlock(blocks); err != nil {
		t.Fatal(err)
	}
	set := NewSet(space)
	// The LB rewrites the VIP to the server address and forwards.
	if err := set.Add(Rule{Device: lb, Match: vip, Field: "dst", Value: 0x81, Next: fib.Forward(server)}); err != nil {
		t.Fatal(err)
	}
	return &natRig{space: space, store: store, tr: tr, set: set}
}

func TestImage(t *testing.T) {
	r := newNATRig(t)
	rule := r.set.rules[lb][0]
	img := r.set.Image(rule, bdd.True)
	if img != r.space.Exact("dst", 0x81) {
		t.Errorf("image should be exactly the server address")
	}
	// Image restricted to non-matching space is empty.
	if got := r.set.Image(rule, r.space.Exact("dst", 0x02)); got != bdd.False {
		t.Errorf("image of disjoint input = %d", got)
	}
}

func TestWalkThroughNAT(t *testing.T) {
	r := newNATRig(t)
	res, hops := r.set.Walk(r.tr, r.store, client, hs.Header{0x01}, nDev)
	if res != Delivered {
		t.Fatalf("VIP packet %v, want delivered (hops: %v)", res, hops)
	}
	// Path: client (no rewrite) → lb (rewritten) → server.
	if len(hops) != 3 {
		t.Fatalf("hops = %+v", hops)
	}
	if hops[1].Device != lb || !hops[1].Rewritten {
		t.Errorf("rewrite hop wrong: %+v", hops[1])
	}
	if hops[2].Header[0] != 0x81 {
		t.Errorf("server saw dst %#x, want 0x81", hops[2].Header[0])
	}
	// A non-VIP packet is dropped at the client.
	res, _ = r.set.Walk(r.tr, r.store, client, hs.Header{0x05}, nDev)
	if res != Dropped {
		t.Errorf("non-VIP packet %v, want dropped", res)
	}
}

func TestWalkDetectsRewriteLoop(t *testing.T) {
	// Two devices rewriting to each other's trigger values loop forever
	// — but only the exact (device, header) revisit counts.
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	store := pat.NewStore()
	tr := imt.NewTransformer(space.E, store, bdd.True)
	for d := fib.DeviceID(0); d < 2; d++ {
		err := tr.ApplyBlock([]fib.Block{{Device: d, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
		}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	set := NewSet(space)
	a := space.Exact("dst", 0x0A)
	b := space.Exact("dst", 0x0B)
	if err := set.Add(Rule{Device: 0, Match: a, Field: "dst", Value: 0x0B, Next: fib.Forward(1)}); err != nil {
		t.Fatal(err)
	}
	if err := set.Add(Rule{Device: 1, Match: b, Field: "dst", Value: 0x0A, Next: fib.Forward(0)}); err != nil {
		t.Fatal(err)
	}
	res, _ := set.Walk(tr, store, 0, hs.Header{0x0A}, 2)
	if res != Looped {
		t.Fatalf("rewrite ping-pong = %v, want looped", res)
	}
}

func TestValidateWellFormed(t *testing.T) {
	r := newNATRig(t)
	if v := r.set.Validate(r.tr.Model()); len(v) != 0 {
		t.Fatalf("NAT rig should be well-formed, got %v", v)
	}
	// A rewrite whose pre-image straddles classes (matches both the VIP
	// class and the default class) violates the §7 condition.
	bad := NewSet(r.space)
	wide := r.space.Prefix("dst", 0x00, 1) // lower half: VIP + others
	if err := bad.Add(Rule{Device: lb, Match: wide, Field: "dst", Value: 0x81, Next: fib.Forward(server)}); err != nil {
		t.Fatal(err)
	}
	v := bad.Validate(r.tr.Model())
	if len(v) == 0 {
		t.Fatal("straddling rewrite accepted")
	}
	if v[0].String() == "" {
		t.Error("empty violation string")
	}
}

func TestAddRejectsBadRules(t *testing.T) {
	r := newNATRig(t)
	if err := r.set.Add(Rule{Device: lb, Match: bdd.False, Field: "dst", Value: 1}); err == nil {
		t.Error("empty match accepted")
	}
	if err := r.set.Add(Rule{Device: lb, Match: bdd.True, Field: "dst", Value: 0x1FF}); err == nil {
		t.Error("oversized value accepted")
	}
}

// Package sched implements the work-stealing scheduler behind Flash's
// parallel subspace execution (§3.4 of the paper). The unit of work is a
// task bound to a "home" — in the flash package a home is a subspace —
// and the scheduler guarantees per-home serialization and FIFO order:
// two tasks submitted to the same home never run concurrently and never
// reorder. Across homes, tasks run in parallel on a bounded set of
// workers, and an idle worker steals queued homes from the busiest
// peer, so one hot subspace no longer serializes the whole epoch behind
// a static subspace→worker assignment.
//
// The scheduling granularity is a whole home, not an individual task:
// when a home's queue transitions empty→non-empty, a single token for
// that home is pushed onto a worker's deque; whichever worker pops (or
// steals) the token drains the home's queue to empty. Stealing a token
// therefore migrates all of a subspace's pending blocks at once, which
// preserves the per-device update order that CE2D (§4.1) and the Fast
// IMT merge (§3.2) both rely on.
//
// Pool.Wait is the epoch barrier: it runs every submitted task to
// completion before returning, so callers get the same
// all-subspaces-done semantics the previous WaitGroup fan-out had.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Task is one unit of work. Tasks must handle their own errors (the
// scheduler only transports panics, see Wait).
type Task func()

// Stats is a point-in-time snapshot of scheduler activity counters.
type Stats struct {
	Tasks      uint64 // tasks run to completion (panicking tasks excluded)
	Steals     uint64 // home tokens taken from another worker's deque
	Dispatches uint64 // Wait barriers executed
}

// Pool schedules tasks across a fixed set of workers with per-home FIFO
// serialization and work stealing. The zero value is not usable; call
// NewPool.
//
// Concurrency contract: Submit may be called concurrently with other
// Submits and from inside running tasks, but not concurrently with
// Wait's return (Wait is a barrier; the flash package calls
// Submit+Wait under its own per-dispatch critical section). Stats and
// the instrumented gauges are safe at any time.
type Pool struct {
	nworkers int
	homes    []homeState
	deques   []deque

	pending    atomic.Int64 // submitted but not yet completed tasks
	tasks      atomic.Uint64
	steals     atomic.Uint64
	dispatches atomic.Uint64

	panicMu  sync.Mutex
	panicVal any // first unrecovered task panic of the current dispatch
}

// homeState is one home's FIFO task queue. scheduled is true while a
// token for this home sits in a deque or a worker is draining the
// queue; it guarantees at most one runner per home.
type homeState struct {
	mu        sync.Mutex
	queue     []Task
	scheduled bool
}

// deque holds home tokens owned by one worker. The owner pops from the
// front; thieves steal from the back. All access goes through the
// methods below — the stealsafe flashvet analyzer enforces that no
// other code reaches into the fields.
type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) pushBack(h int) {
	d.mu.Lock()
	d.items = append(d.items, h)
	d.mu.Unlock()
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	h := d.items[0]
	d.items = d.items[1:]
	if len(d.items) == 0 {
		d.items = nil
	}
	return h, true
}

func (d *deque) stealBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	h := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return h, true
}

func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// NewPool creates a scheduler for the given number of homes. workers <=
// 0 selects GOMAXPROCS; the count is clamped to [1, homes] because a
// home token is the unit of parallelism — extra workers could never
// find work.
func NewPool(workers, homes int) *Pool {
	if homes < 1 {
		homes = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > homes {
		workers = homes
	}
	return &Pool{
		nworkers: workers,
		homes:    make([]homeState, homes),
		deques:   make([]deque, workers),
	}
}

// Workers reports the worker count the pool was built with.
func (p *Pool) Workers() int { return p.nworkers }

// Homes reports the number of homes.
func (p *Pool) Homes() int { return len(p.homes) }

// Stats returns a snapshot of the activity counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Tasks:      p.tasks.Load(),
		Steals:     p.steals.Load(),
		Dispatches: p.dispatches.Load(),
	}
}

// Instrument publishes the scheduler counters as sampled gauges under
// r. Instrument(nil) is a no-op.
func (p *Pool) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Func("workers", func() int64 { return int64(p.nworkers) })
	r.Func("tasks", func() int64 { return int64(p.tasks.Load()) })
	r.Func("steals", func() int64 { return int64(p.steals.Load()) })
	r.Func("dispatches", func() int64 { return int64(p.dispatches.Load()) })
}

// Submit enqueues a task on a home's FIFO queue. If the home was idle,
// a token for it is pushed onto the deque of the home's preferred
// worker (home mod workers); the token migrates only by stealing.
func (p *Pool) Submit(home int, t Task) {
	if t == nil {
		return
	}
	if home < 0 || home >= len(p.homes) {
		panic(fmt.Sprintf("sched: home %d out of range [0,%d)", home, len(p.homes)))
	}
	p.pending.Add(1)
	hs := &p.homes[home]
	hs.mu.Lock()
	hs.queue = append(hs.queue, t)
	wasScheduled := hs.scheduled
	hs.scheduled = true
	hs.mu.Unlock()
	if !wasScheduled {
		p.deques[home%p.nworkers].pushBack(home)
	}
}

// Wait runs all submitted tasks to completion and returns — the epoch
// barrier. Worker goroutines live only for the duration of one barrier,
// so an idle Pool holds no goroutines and needs no Close. If a task
// panicked (without recovering itself), Wait re-panics with the first
// such value after the barrier completes, so sibling subspaces still
// finish and no task is lost.
func (p *Pool) Wait() {
	p.dispatches.Add(1)
	if p.pending.Load() == 0 {
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < p.nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.work(w)
		}(w)
	}
	wg.Wait()
	p.panicMu.Lock()
	pv := p.panicVal
	p.panicVal = nil
	p.panicMu.Unlock()
	if pv != nil {
		panic(pv)
	}
}

// work is one worker's barrier loop: drain the own deque front, then
// steal from the busiest peer's back, then spin briefly while other
// workers still hold pending work (their homes may spawn follow-up
// tasks we can steal).
func (p *Pool) work(w int) {
	idle := 0
	for {
		h, ok := p.deques[w].popFront()
		if !ok {
			h, ok = p.steal(w)
			if ok {
				p.steals.Add(1)
			}
		}
		if !ok {
			if p.pending.Load() <= 0 {
				return
			}
			// Pending tasks exist but their home tokens are held by
			// running workers; yield and re-check.
			idle++
			if idle < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		idle = 0
		p.drain(h)
	}
}

// steal takes a home token from the back of the busiest other worker's
// deque.
func (p *Pool) steal(w int) (int, bool) {
	victim, max := -1, 0
	for i := range p.deques {
		if i == w {
			continue
		}
		if n := p.deques[i].size(); n > max {
			victim, max = i, n
		}
	}
	if victim < 0 {
		return 0, false
	}
	return p.deques[victim].stealBack()
}

// drain runs one home's queue FIFO until empty, then releases the
// home. Only one worker can be in drain for a given home (the
// scheduled flag), which is what serializes same-home tasks.
func (p *Pool) drain(home int) {
	hs := &p.homes[home]
	for {
		hs.mu.Lock()
		if len(hs.queue) == 0 {
			hs.queue = nil
			hs.scheduled = false
			hs.mu.Unlock()
			return
		}
		t := hs.queue[0]
		hs.queue = hs.queue[1:]
		hs.mu.Unlock()
		p.runTask(t)
	}
}

func (p *Pool) runTask(t Task) {
	completed := false
	defer func() {
		p.pending.Add(-1)
		if completed {
			p.tasks.Add(1)
			return
		}
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
			}
			p.panicMu.Unlock()
		}
	}()
	t()
	completed = true
}

package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4, 8)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(i%8, func() { n.Add(1) })
	}
	p.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	if st := p.Stats(); st.Tasks != 100 || st.Dispatches != 1 {
		t.Fatalf("stats = %+v, want 100 tasks / 1 dispatch", st)
	}
}

func TestPoolWaitIsABarrierAcrossDispatches(t *testing.T) {
	p := NewPool(3, 5)
	for round := 0; round < 10; round++ {
		var n atomic.Int64
		for i := 0; i < 20; i++ {
			p.Submit(i%5, func() { n.Add(1) })
		}
		p.Wait()
		if n.Load() != 20 {
			t.Fatalf("round %d: ran %d tasks before barrier returned, want 20", round, n.Load())
		}
	}
}

func TestPoolClampsWorkers(t *testing.T) {
	if got := NewPool(16, 4).Workers(); got != 4 {
		t.Fatalf("workers = %d, want clamp to 4 homes", got)
	}
	if got := NewPool(0, 4).Workers(); got < 1 {
		t.Fatalf("workers = %d, want >= 1 for default", got)
	}
	if got := NewPool(-3, 4).Homes(); got != 4 {
		t.Fatalf("homes = %d, want 4", got)
	}
}

func TestPoolEmptyWaitReturns(t *testing.T) {
	p := NewPool(2, 2)
	p.Wait() // must not hang with nothing submitted
	p.Submit(0, nil)
	p.Wait() // nil tasks are ignored
	if st := p.Stats(); st.Tasks != 0 {
		t.Fatalf("tasks = %d, want 0", st.Tasks)
	}
}

func TestPoolSubmitFromInsideTask(t *testing.T) {
	p := NewPool(2, 4)
	var order []int
	var mu sync.Mutex
	p.Submit(1, func() {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		// Follow-up work discovered mid-task: same home keeps FIFO order,
		// another home runs before the barrier releases.
		p.Submit(1, func() {
			mu.Lock()
			order = append(order, 2)
			mu.Unlock()
		})
		p.Submit(3, func() {
			mu.Lock()
			order = append(order, 3)
			mu.Unlock()
		})
	})
	p.Wait()
	if len(order) != 3 || order[0] != 1 {
		t.Fatalf("order = %v, want all 3 tasks with task 1 first", order)
	}
	// Same-home FIFO: 2 must appear after 1 (it does, 1 is first), and
	// both same-home tasks ran exactly once.
}

func TestPoolPanicPropagatesAfterBarrier(t *testing.T) {
	p := NewPool(2, 4)
	var done atomic.Int64
	for i := 0; i < 4; i++ {
		i := i
		p.Submit(i, func() {
			if i == 2 {
				panic("boom")
			}
			done.Add(1)
		})
	}
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Wait()
	}()
	if recovered != "boom" {
		t.Fatalf("recovered %v, want boom", recovered)
	}
	if done.Load() != 3 {
		t.Fatalf("siblings ran %d times, want 3 (barrier completes before re-panic)", done.Load())
	}
	// The pool stays usable after a propagated panic.
	p.Submit(0, func() { done.Add(1) })
	p.Wait()
	if done.Load() != 4 {
		t.Fatalf("post-panic task did not run")
	}
}

func TestPoolStealsFromBusyWorker(t *testing.T) {
	// 2 workers, 4 homes: homes 0 and 2 land on worker 0's deque. Home 0
	// blocks its runner until home 2 has executed — home 2 can only run
	// if worker 1 steals it, so a completed barrier proves a steal.
	p := NewPool(2, 4)
	ranHot := make(chan struct{})
	p.Submit(0, func() { <-ranHot })
	p.Submit(2, func() { close(ranHot) })
	p.Wait()
	if st := p.Stats(); st.Steals == 0 {
		t.Fatalf("stats = %+v, want at least one steal", st)
	}
}

func TestPoolInstrument(t *testing.T) {
	p := NewPool(2, 2)
	reg := obs.NewRegistry("sched-test")
	p.Instrument(reg.Sub("sched"))
	p.Instrument(nil) // no-op
	p.Submit(0, func() {})
	p.Wait()
	snap := reg.Snapshot()
	if v, ok := snap.Get("sched", "tasks"); !ok || v != 1 {
		t.Fatalf("sched/tasks = %d (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Get("sched", "workers"); !ok || v != 2 {
		t.Fatalf("sched/workers = %d (ok=%v), want 2", v, ok)
	}
}

// TestPoolPropertyPerHomeOrdering is the quick-check property test
// behind the differential suite's scheduling guarantees: across random
// worker counts, home counts and task loads, the scheduler never
// drops, duplicates, reorders, or concurrently runs tasks of the same
// home — even when some tasks panic and recover (the poisoned-worker
// shape from the fault-tolerance layer).
func TestPoolPropertyPerHomeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf1a54))
	for iter := 0; iter < 60; iter++ {
		workers := 1 + rng.Intn(8)
		homes := 1 + rng.Intn(12)
		rounds := 1 + rng.Intn(3)
		p := NewPool(workers, homes)

		got := make([][]int, homes)  // observed per-home sequence
		want := make([][]int, homes) // submitted per-home sequence
		running := make([]int32, homes)
		var mu sync.Mutex

		seq := 0
		for r := 0; r < rounds; r++ {
			ntasks := rng.Intn(120)
			for i := 0; i < ntasks; i++ {
				h := rng.Intn(homes)
				id := seq
				seq++
				want[h] = append(want[h], id)
				poison := rng.Intn(16) == 0
				p.Submit(h, func() {
					if atomic.AddInt32(&running[h], 1) != 1 {
						t.Errorf("iter %d: two tasks of home %d ran concurrently", iter, h)
					}
					mu.Lock()
					got[h] = append(got[h], id)
					mu.Unlock()
					atomic.AddInt32(&running[h], -1)
					if poison {
						// A task that fails and recovers internally (the
						// quarantine path) must not disturb scheduling.
						func() {
							defer func() { _ = recover() }()
							panic("poisoned")
						}()
					}
				})
			}
			p.Wait()
		}

		for h := 0; h < homes; h++ {
			if len(got[h]) != len(want[h]) {
				t.Fatalf("iter %d home %d: ran %d tasks, submitted %d (dropped or duplicated)",
					iter, h, len(got[h]), len(want[h]))
			}
			for i := range got[h] {
				if got[h][i] != want[h][i] {
					t.Fatalf("iter %d home %d: order %v, want %v (reordered)",
						iter, h, got[h], want[h])
				}
			}
		}
	}
}

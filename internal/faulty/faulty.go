// Package faulty provides seeded, deterministic fault injection for
// net.Conn and net.Listener, used by the chaos tests to prove that the
// verifier's results under network faults are identical to a fault-free
// run.
//
// Faults operate at Write-call granularity: the wire protocol issues one
// Write for a frame header and one for its body through a bufio.Writer
// flush, so corrupting, dropping, duplicating or reordering whole Write
// calls models frame-level network faults while staying protocol-
// agnostic. Determinism comes from a single seeded math/rand source
// consulted in connection order; with the same seed, dial sequence and
// write sequence, the same faults fire.
package faulty

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedDisconnect is the error surfaced by writes after the
// injector severs a connection mid-stream.
var ErrInjectedDisconnect = errors.New("faulty: injected disconnect")

// Config sets per-write fault probabilities (each in [0,1]) and limits.
type Config struct {
	Seed int64

	Drop       float64 // write silently discarded
	Dup        float64 // write delivered twice
	Reorder    float64 // write held back, delivered after a later write
	Corrupt    float64 // one byte of the write flipped
	Truncate   float64 // write delivered short, then the connection severed
	Disconnect float64 // connection severed before the write

	// Delay inserts a pause of up to MaxDelay before a write with this
	// probability (latency jitter; does not reorder by itself).
	Delay    float64
	MaxDelay time.Duration

	// ReorderWindow bounds how many subsequent writes a held-back write
	// can wait behind before it is flushed (default 2).
	ReorderWindow int

	// MaxFaults caps the total number of faults injected across all
	// connections (0 = unlimited). A budget guarantees chaos runs
	// terminate: once spent, the network is clean.
	MaxFaults int
}

// Stats counts the faults actually injected.
type Stats struct {
	Drops       int
	Dups        int
	Reorders    int
	Corruptions int
	Truncations int
	Disconnects int
	Delays      int
}

// Total returns the total number of injected faults.
func (s Stats) Total() int {
	return s.Drops + s.Dups + s.Reorders + s.Corruptions + s.Truncations + s.Disconnects + s.Delays
}

// Injector owns the fault schedule. One injector may wrap any number of
// connections; its random source is shared (and mutex-guarded), so the
// fault sequence is deterministic for a deterministic dial/write order.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	stats  Stats
	budget int // remaining faults; -1 = unlimited
}

// New creates an injector for the config, seeding its private source.
func New(cfg Config) *Injector {
	if cfg.ReorderWindow <= 0 {
		cfg.ReorderWindow = 2
	}
	budget := cfg.MaxFaults
	if budget == 0 {
		budget = -1
	}
	return &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		budget: budget,
	}
}

// Stats returns a snapshot of the faults injected so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// spend rolls the dice for one fault kind; a hit consumes budget.
func (in *Injector) spend(p float64) bool {
	if p <= 0 || in.budget == 0 {
		return false
	}
	if in.rng.Float64() >= p {
		return false
	}
	if in.budget > 0 {
		in.budget--
	}
	return true
}

// kind of fault chosen for one write.
type fault int

const (
	faultNone fault = iota
	faultDrop
	faultDup
	faultReorder
	faultCorrupt
	faultTruncate
	faultDisconnect
)

// plan decides the faults for one write under the shared lock: at most
// one structural fault plus an optional delay.
func (in *Injector) plan() (f fault, delay time.Duration, corruptAt int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.spend(in.cfg.Delay) {
		in.stats.Delays++
		delay = time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay) + 1))
	}
	switch {
	case in.spend(in.cfg.Disconnect):
		in.stats.Disconnects++
		f = faultDisconnect
	case in.spend(in.cfg.Drop):
		in.stats.Drops++
		f = faultDrop
	case in.spend(in.cfg.Dup):
		in.stats.Dups++
		f = faultDup
	case in.spend(in.cfg.Reorder):
		in.stats.Reorders++
		f = faultReorder
	case in.spend(in.cfg.Corrupt):
		in.stats.Corruptions++
		f = faultCorrupt
		corruptAt = in.rng.Int()
	case in.spend(in.cfg.Truncate):
		in.stats.Truncations++
		f = faultTruncate
	}
	return f, delay, corruptAt
}

// WrapConn returns conn with fault injection on its write path. Reads
// pass through untouched (the peer's writes are faulted by its own
// wrapped side, if any).
func (in *Injector) WrapConn(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, in: in, window: in.cfg.ReorderWindow}
}

// Listener wraps l so every accepted connection is fault-injected.
func (in *Injector) Listener(l net.Listener) net.Listener {
	return &faultListener{Listener: l, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (fl *faultListener) Accept() (net.Conn, error) {
	conn, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return fl.in.WrapConn(conn), nil
}

// faultConn injects faults into the write path of one connection.
type faultConn struct {
	net.Conn
	in     *Injector
	window int

	mu     sync.Mutex
	held   [][]byte // reorder buffer: writes delayed behind later ones
	heldAt int      // writes seen since the oldest held write
	dead   bool
}

// Write applies the planned fault to this write call.
func (fc *faultConn) Write(p []byte) (int, error) {
	f, delay, corruptAt := fc.in.plan()
	if delay > 0 {
		time.Sleep(delay)
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.dead {
		return 0, ErrInjectedDisconnect
	}
	switch f {
	case faultDisconnect:
		fc.dead = true
		fc.Conn.Close()
		return 0, ErrInjectedDisconnect
	case faultDrop:
		// Silently lost; report success so the sender does not notice.
		return len(p), nil
	case faultDup:
		if err := fc.deliver(p); err != nil {
			return 0, err
		}
		if err := fc.deliver(p); err != nil {
			return 0, err
		}
		return len(p), nil
	case faultReorder:
		// Hold this write back; it is delivered after a later write (or
		// at close), modeling in-network reordering.
		fc.held = append(fc.held, append([]byte(nil), p...))
		fc.heldAt = 0
		return len(p), nil
	case faultCorrupt:
		if len(p) > 0 {
			q := append([]byte(nil), p...)
			q[corruptAt%len(q)] ^= 0xA5
			if err := fc.deliver(q); err != nil {
				return 0, err
			}
			return len(p), nil
		}
	case faultTruncate:
		// Deliver a prefix, then sever: a mid-frame disconnect.
		if len(p) > 1 {
			if _, err := fc.Conn.Write(p[:len(p)/2]); err != nil {
				return 0, err
			}
		}
		fc.dead = true
		fc.Conn.Close()
		return 0, ErrInjectedDisconnect
	}
	if err := fc.deliver(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// deliver writes one payload, flushing reorder-held writes that have
// waited out their window behind it. Caller holds fc.mu.
func (fc *faultConn) deliver(p []byte) error {
	if _, err := fc.Conn.Write(p); err != nil {
		return err
	}
	if len(fc.held) > 0 {
		fc.heldAt++
		if fc.heldAt >= fc.window {
			held := fc.held
			fc.held = nil
			fc.heldAt = 0
			for _, h := range held {
				if _, err := fc.Conn.Write(h); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Close flushes any reorder-held writes (they were "in the network")
// before closing the underlying connection.
func (fc *faultConn) Close() error {
	fc.mu.Lock()
	held := fc.held
	fc.held = nil
	dead := fc.dead
	fc.dead = true
	fc.mu.Unlock()
	if !dead {
		for _, h := range held {
			fc.Conn.Write(h)
		}
	}
	return fc.Conn.Close()
}

package faulty

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// run pushes a fixed write sequence through a fault-injected pipe and
// returns what the reader saw plus the injected-fault stats.
func run(t *testing.T, cfg Config, writes [][]byte) ([]byte, Stats) {
	t.Helper()
	in := New(cfg)
	client, server := net.Pipe()
	fc := in.WrapConn(client)
	var (
		wg  sync.WaitGroup
		buf bytes.Buffer
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(&buf, server)
	}()
	for _, w := range writes {
		if _, err := fc.Write(w); err != nil {
			break // injected disconnect ends the sequence
		}
	}
	fc.Close()
	wg.Wait()
	server.Close()
	return buf.Bytes(), in.Stats()
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{
		Seed: 42,
		Drop: 0.2, Dup: 0.2, Reorder: 0.2, Corrupt: 0.1,
	}
	writes := make([][]byte, 50)
	for i := range writes {
		writes[i] = []byte{byte(i), byte(i + 1), byte(i + 2)}
	}
	got1, stats1 := run(t, cfg, writes)
	got2, stats2 := run(t, cfg, writes)
	if stats1 != stats2 {
		t.Fatalf("same seed, different fault schedule: %+v vs %+v", stats1, stats2)
	}
	if !bytes.Equal(got1, got2) {
		t.Fatalf("same seed, different delivered bytes")
	}
	if stats1.Total() == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
	if _, stats3 := run(t, Config{Seed: 43, Drop: 0.2, Dup: 0.2, Reorder: 0.2, Corrupt: 0.1}, writes); stats3 == stats1 {
		t.Fatalf("different seeds produced identical schedules: %+v", stats1)
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 1.0, MaxFaults: 3}
	writes := make([][]byte, 10)
	for i := range writes {
		writes[i] = []byte{byte(i)}
	}
	got, stats := run(t, cfg, writes)
	if stats.Drops != 3 {
		t.Fatalf("drops = %d, want exactly the budget of 3", stats.Drops)
	}
	if len(got) != 7 {
		t.Fatalf("delivered %d bytes, want 7 (10 writes - 3 dropped)", len(got))
	}
}

func TestDisconnectSurfacesError(t *testing.T) {
	in := New(Config{Seed: 1, Disconnect: 1.0, MaxFaults: 1})
	client, server := net.Pipe()
	defer server.Close()
	fc := in.WrapConn(client)
	go io.Copy(io.Discard, server)
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write after injected disconnect should fail")
	}
	if in.Stats().Disconnects != 1 {
		t.Fatalf("stats = %+v, want 1 disconnect", in.Stats())
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	in := New(Config{Seed: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := in.Listener(l)
	defer fl.Close()
	done := make(chan net.Conn, 1)
	go func() {
		conn, err := fl.Accept()
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- conn
	}()
	c, err := net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := <-done
	if conn == nil {
		t.FailNow()
	}
	defer conn.Close()
	if _, ok := conn.(*faultConn); !ok {
		t.Fatalf("accepted conn is %T, want *faultConn", conn)
	}
}

package ce2d

import (
	"reflect"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/reach"
	"repro/internal/spec"
	"repro/internal/topo"
)

// serialRig builds a dispatcher over the shared line-topology rig whose
// factory mints verifiers on the rig's engine (the cross-engine half of
// restore — node dumps — is owned by the flash layer; this test pins
// the dispatcher/verifier state machine).
func serialRig() (*rig, func(Epoch) *Verifier, Check) {
	r := newRig()
	check := Check{
		Name:    "a-reaches-d",
		Kind:    CheckReach,
		Space:   bdd.True,
		Expr:    spec.MustParse("a .* d"),
		Sources: []topo.NodeID{r.a},
		IsDest:  func(n topo.NodeID) bool { return n == r.d },
	}
	factory := func(Epoch) *Verifier { return r.verifier(check) }
	return r, factory, check
}

// chainMsg is one device's full-table message: forward along the line.
func chainMsg(r *rig, dev topo.NodeID, e Epoch, id int64) Msg {
	next := map[topo.NodeID]fib.Action{
		r.a: fib.Forward(r.b), r.b: fib.Forward(r.c),
		r.c: fib.Forward(r.d), r.d: r.hostD,
	}[dev]
	return Msg{Device: dev, Epoch: e, Updates: insBlock(id, bdd.True, 0, next)}
}

func eventKeys(evs []TaggedEvent) []string {
	var out []string
	for _, ev := range evs {
		out = append(out, string(ev.Epoch)+"/"+ev.Event.Check+"/"+ev.Event.Verdict.String()+"/"+ev.Event.Loop.String())
	}
	return out
}

// TestDispatcherExportRestoreEquivalence drives a dispatcher through a
// two-epoch overlap, checkpoints it mid-epoch, restores, and asserts
// the restored dispatcher emits the same deterministic results for the
// same suffix of agent messages — the ce2d half of the chaos suite's
// crash-equivalence property.
func TestDispatcherExportRestoreEquivalence(t *testing.T) {
	r, factory, check := serialRig()
	d := NewDispatcher(factory)

	// Epoch e1 converges fully: one satisfied result.
	devs := []topo.NodeID{r.a, r.b, r.c, r.d}
	var got []TaggedEvent
	for i, dev := range devs {
		evs, err := d.Receive(chainMsg(r, dev, "e1", int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, evs...)
	}
	if len(got) != 1 || got[0].Event.Verdict != reach.Satisfied {
		t.Fatalf("e1 events = %v", eventKeys(got))
	}

	// Epoch e2 starts: a and b have re-advertised, c and d lag. The
	// first e2 observation deactivates e1, so e2's verifier — with only
	// a and b synchronized — becomes current mid-convergence.
	if _, err := d.Receive(chainMsg(r, r.a, "e2", 11)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Receive(chainMsg(r, r.b, "e2", 12)); err != nil {
		t.Fatal(err)
	}
	if e, _, ok := d.Current(); !ok || e != "e2" {
		t.Fatalf("current epoch = %q, want e2", e)
	}

	// ---- checkpoint here, mid-epoch ----
	st, ok := d.ExportState()
	if !ok {
		t.Fatal("ExportState found no live verifier")
	}
	if st.Epoch != "e2" {
		t.Fatalf("serialized epoch %q, want e2", st.Epoch)
	}
	// Consumed prefixes must have been compacted to one baseline message.
	for dev, n := range st.Fed {
		if n != 1 {
			t.Fatalf("device %d fed marker %d, want 1 (baseline)", dev, n)
		}
	}

	v, _ := d.Verifier(st.Epoch)
	rv, err := RestoreVerifier(Config{
		Topo:     r.g,
		Engine:   r.s.E,
		Universe: bdd.True,
		Checks:   []Check{check},
	}, v.Transformer().Clone(), v.SyncOrder())
	if err != nil {
		t.Fatalf("RestoreVerifier: %v", err)
	}
	rd, err := RestoreDispatcher(factory, st, rv)
	if err != nil {
		t.Fatalf("RestoreDispatcher: %v", err)
	}

	// The restored verifier's model must match the original's.
	if !reflect.DeepEqual(tableIDs(v), tableIDs(rv)) {
		t.Fatalf("restored tables %v != original %v", tableIDs(rv), tableIDs(v))
	}
	if got, want := rv.Transformer().Model().Len(), v.Transformer().Model().Len(); got != want {
		t.Fatalf("restored model has %d ECs, want %d", got, want)
	}
	if got, want := rv.SynchronizedDevices(), v.SynchronizedDevices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored synced %v, want %v", got, want)
	}

	// ---- identical suffix into both dispatchers ----
	suffix := []Msg{chainMsg(r, r.c, "e2", 13), chainMsg(r, r.d, "e2", 14)}
	var orig, rest []TaggedEvent
	for _, m := range suffix {
		evs, err := d.Receive(m)
		if err != nil {
			t.Fatalf("original suffix: %v", err)
		}
		orig = append(orig, evs...)
	}
	for _, m := range suffix {
		evs, err := rd.Receive(m)
		if err != nil {
			t.Fatalf("restored suffix: %v", err)
		}
		rest = append(rest, evs...)
	}
	if !reflect.DeepEqual(eventKeys(orig), eventKeys(rest)) {
		t.Fatalf("suffix events diverge:\n  original: %v\n  restored: %v", eventKeys(orig), eventKeys(rest))
	}
	if len(orig) == 0 {
		t.Fatal("suffix produced no events — scenario lost its teeth")
	}

	// Both converge to the same current verifier state.
	e1, cv1, _ := d.Current()
	e2, cv2, _ := rd.Current()
	if e1 != e2 {
		t.Fatalf("current epochs diverge: %q vs %q", e1, e2)
	}
	if !reflect.DeepEqual(tableIDs(cv1), tableIDs(cv2)) {
		t.Fatalf("final tables diverge: %v vs %v", tableIDs(cv1), tableIDs(cv2))
	}
}

func tableIDs(v *Verifier) map[fib.DeviceID][]int64 {
	out := make(map[fib.DeviceID][]int64)
	for _, dev := range v.SynchronizedDevices() {
		for _, rl := range v.Transformer().Table(dev).Rules() {
			out[dev] = append(out[dev], rl.ID)
		}
	}
	return out
}

func TestTrackerExportRestore(t *testing.T) {
	tr := NewTracker()
	tr.Observe(1, "e1")
	tr.Observe(2, "e1")
	tr.Observe(1, "e2")
	st := tr.Export()
	rt := RestoreTracker(st)
	if !reflect.DeepEqual(rt.Export(), st) {
		t.Fatalf("round trip diverged: %+v vs %+v", rt.Export(), st)
	}
	// Device 1 moving to e2 deactivated e1; both facts must survive.
	if !rt.Active("e2") {
		t.Fatal("restored tracker lost active epoch e2")
	}
	if rt.Active("e1") {
		t.Fatal("restored tracker resurrected deactivated epoch e1")
	}
	if e, ok := rt.Last(2); !ok || e != "e1" {
		t.Fatalf("restored tracker Last(2) = %q, %v", e, ok)
	}
}

func TestRestoreDispatcherRejectsCorruptState(t *testing.T) {
	r, factory, check := serialRig()
	d := NewDispatcher(factory)
	for i, dev := range []topo.NodeID{r.a, r.b, r.c, r.d} {
		if _, err := d.Receive(chainMsg(r, dev, "e1", int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := d.ExportState()
	v, _ := d.Verifier(st.Epoch)

	t.Run("nil verifier", func(t *testing.T) {
		if _, err := RestoreDispatcher(factory, st, nil); err == nil {
			t.Fatal("accepted nil verifier")
		}
	})
	t.Run("inactive epoch", func(t *testing.T) {
		bad := st
		bad.Epoch = "never-happened"
		if _, err := RestoreDispatcher(factory, bad, v); err == nil {
			t.Fatal("accepted epoch absent from tracker")
		}
	})
	t.Run("fed beyond queue", func(t *testing.T) {
		bad := st
		bad.Fed = map[fib.DeviceID]int{fib.DeviceID(r.a): 99}
		if _, err := RestoreDispatcher(factory, bad, v); err == nil {
			t.Fatal("accepted fed marker beyond queue length")
		}
	})
	t.Run("duplicate sync order", func(t *testing.T) {
		if _, err := RestoreVerifier(Config{
			Topo: r.g, Engine: r.s.E, Universe: bdd.True, Checks: []Check{check},
		}, v.Transformer().Clone(), []fib.DeviceID{1, 1}); err == nil {
			t.Fatal("accepted duplicate device in sync order")
		}
	})
}

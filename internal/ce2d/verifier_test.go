package ce2d

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/reach"
	"repro/internal/spec"
	"repro/internal/topo"
)

// rig is a 4-node line topology a-b-c-d with an 8-bit dst space.
type rig struct {
	g     *topo.Graph
	s     *hs.Space
	a, b  topo.NodeID
	c, d  topo.NodeID
	hostD fib.Action // delivery action at d (host beyond the fabric)
}

func newRig() *rig {
	g := topo.New()
	r := &rig{g: g, s: hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))}
	r.a = g.AddNode("a", topo.RoleSwitch, -1)
	r.b = g.AddNode("b", topo.RoleSwitch, -1)
	r.c = g.AddNode("c", topo.RoleSwitch, -1)
	r.d = g.AddNode("d", topo.RoleSwitch, -1)
	g.AddLink(r.a, r.b)
	g.AddLink(r.b, r.c)
	g.AddLink(r.c, r.d)
	r.hostD = fib.Forward(topo.NodeID(g.N())) // beyond fabric = delivery
	return r
}

func (r *rig) verifier(checks ...Check) *Verifier {
	return NewVerifier(Config{
		Topo:     r.g,
		Engine:   r.s.E,
		Universe: bdd.True,
		Checks:   checks,
	})
}

func insBlock(id int64, match bdd.Ref, pri int32, a fib.Action) []fib.Update {
	return []fib.Update{{Op: fib.Insert, Rule: fib.Rule{ID: id, Match: match, Pri: pri, Action: a}}}
}

func TestVerifierReachSatisfied(t *testing.T) {
	r := newRig()
	check := Check{
		Name:    "a-reaches-d",
		Kind:    CheckReach,
		Space:   r.s.Prefix("dst", 0x10, 4),
		Expr:    spec.MustParse("a .* d"),
		Sources: []topo.NodeID{r.a},
		IsDest:  func(n topo.NodeID) bool { return n == r.d },
	}
	v := r.verifier(check)
	devices := []struct {
		dev topo.NodeID
		act fib.Action
	}{
		{r.a, fib.Forward(r.b)},
		{r.b, fib.Forward(r.c)},
		{r.c, fib.Forward(r.d)},
		{r.d, r.hostD},
	}
	var all []Event
	for i, dv := range devices {
		if err := v.ApplyUpdates(dv.dev, insBlock(int64(i+1), bdd.True, 0, dv.act)); err != nil {
			t.Fatal(err)
		}
		evs, err := v.MarkSynchronized(dv.dev)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, evs...)
		if i < len(devices)-1 && len(all) != 0 {
			t.Fatalf("premature deterministic result after %d devices: %+v", i+1, all)
		}
	}
	if len(all) != 1 || all[0].Verdict != reach.Satisfied {
		t.Fatalf("events = %+v, want one satisfied", all)
	}
	if v.SynchronizedCount() != 4 {
		t.Fatal("SynchronizedCount wrong")
	}
}

func TestVerifierReachEarlyUnsatisfied(t *testing.T) {
	r := newRig()
	check := Check{
		Name:    "a-reaches-d",
		Kind:    CheckReach,
		Space:   bdd.True,
		Expr:    spec.MustParse("a .* d"),
		Sources: []topo.NodeID{r.a},
		IsDest:  func(n topo.NodeID) bool { return n == r.d },
	}
	v := r.verifier(check)
	// b drops everything: path a..d impossible regardless of a, c, d.
	if err := v.ApplyUpdates(r.b, insBlock(1, bdd.True, 0, fib.Drop)); err != nil {
		t.Fatal(err)
	}
	evs, err := v.MarkSynchronized(r.b)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Verdict != reach.Unsatisfied {
		t.Fatalf("events = %+v, want early unsatisfied", evs)
	}
}

// TestVerifierClassSplit: device b forwards half the space to c and drops
// the other half → the check's class splits, with opposite verdicts.
func TestVerifierClassSplit(t *testing.T) {
	r := newRig()
	check := Check{
		Name:    "a-reaches-d",
		Kind:    CheckReach,
		Space:   bdd.True,
		Expr:    spec.MustParse("a .* d"),
		Sources: []topo.NodeID{r.a},
		IsDest:  func(n topo.NodeID) bool { return n == r.d },
	}
	v := r.verifier(check)
	lower := r.s.Prefix("dst", 0x00, 1)
	sync := func(dev topo.NodeID, ups []fib.Update) []Event {
		t.Helper()
		if err := v.ApplyUpdates(dev, ups); err != nil {
			t.Fatal(err)
		}
		evs, err := v.MarkSynchronized(dev)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	// b: lower half → c, upper half → drop.
	evs := sync(r.b, []fib.Update{
		{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: lower, Pri: 1, Action: fib.Forward(r.c)}},
		{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: bdd.True, Pri: 0, Action: fib.Drop}},
	})
	// Upper half: unsatisfied immediately (b is a cut vertex).
	if len(evs) != 1 || evs[0].Verdict != reach.Unsatisfied {
		t.Fatalf("after b: %+v, want one unsatisfied class", evs)
	}
	if evs[0].Class != r.s.E.Not(lower) {
		t.Errorf("unsatisfied class = %d, want upper half %d", evs[0].Class, r.s.E.Not(lower))
	}
	// Complete the lower-half path.
	evs = sync(r.a, insBlock(3, bdd.True, 0, fib.Forward(r.b)))
	if len(evs) != 0 {
		t.Fatalf("after a: %+v", evs)
	}
	evs = sync(r.c, insBlock(4, bdd.True, 0, fib.Forward(r.d)))
	if len(evs) != 0 {
		t.Fatalf("after c: %+v", evs)
	}
	evs = sync(r.d, insBlock(5, bdd.True, 0, r.hostD))
	if len(evs) != 1 || evs[0].Verdict != reach.Satisfied || evs[0].Class != lower {
		t.Fatalf("after d: %+v, want satisfied for lower half", evs)
	}
}

func TestVerifierLoopCheck(t *testing.T) {
	r := newRig()
	check := Check{
		Name:    "loops",
		Kind:    CheckLoopFree,
		Space:   bdd.True,
		CanExit: func(n topo.NodeID) bool { return n == r.d },
	}
	v := r.verifier(check)
	sync := func(dev topo.NodeID, act fib.Action, id int64) []Event {
		t.Helper()
		if err := v.ApplyUpdates(dev, insBlock(id, bdd.True, 0, act)); err != nil {
			t.Fatal(err)
		}
		evs, err := v.MarkSynchronized(dev)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	if evs := sync(r.b, fib.Forward(r.c), 1); len(evs) != 0 {
		t.Fatalf("after b: %+v", evs)
	}
	// c → b closes a synchronized loop for the whole space.
	evs := sync(r.c, fib.Forward(r.b), 2)
	if len(evs) != 1 || evs[0].Loop != LoopFound {
		t.Fatalf("after c: %+v, want loop", evs)
	}
}

// TestDispatcherConsistency reproduces the essence of Figure 8: a
// transient state (epoch e1) contains a loop, the converged state (e2)
// does not. Per-update-style verification would report the transient
// loop; the dispatcher must never emit a loop event because e1 is
// superseded before its loop-closing device synchronizes.
func TestDispatcherConsistency(t *testing.T) {
	r := newRig()
	mkVerifier := func(Epoch) *Verifier {
		return r.verifier(Check{
			Name:    "loops",
			Kind:    CheckLoopFree,
			Space:   bdd.True,
			CanExit: func(n topo.NodeID) bool { return n == r.d },
		})
	}
	d := NewDispatcher(mkVerifier)
	recv := func(dev topo.NodeID, e Epoch, ups []fib.Update) []TaggedEvent {
		t.Helper()
		evs, err := d.Receive(Msg{Device: dev, Epoch: e, Updates: ups})
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	// Epoch e1: b→c.
	if evs := recv(r.b, "e1", insBlock(1, bdd.True, 0, fib.Forward(r.c))); len(evs) != 0 {
		t.Fatalf("e1/b: %+v", evs)
	}
	// b recomputes for e2 with an unchanged FIB before c's e1 update
	// arrives: e1 deactivated.
	if evs := recv(r.b, "e2", nil); len(evs) != 0 {
		t.Fatalf("e2/b: %+v", evs)
	}
	// c's stale e1 update (c→b, which would close the loop b→c→b under
	// e1) arrives late: it must be queued, never verified — a
	// per-update verifier would report this transient loop.
	if evs := recv(r.c, "e1", insBlock(3, bdd.True, 0, fib.Forward(r.b))); len(evs) != 0 {
		t.Fatalf("stale e1/c triggered events: %+v", evs)
	}
	if _, live := d.Verifier("e1"); live {
		t.Fatal("e1 verifier should be stopped")
	}
	// c converges on e2 (c→d): no loop in e2.
	if evs := recv(r.c, "e2", []fib.Update{
		{Op: fib.Delete, Rule: fib.Rule{ID: 3, Pri: 0}},
		{Op: fib.Insert, Rule: fib.Rule{ID: 4, Match: bdd.True, Pri: 0, Action: fib.Forward(r.d)}},
	}); len(evs) != 0 {
		t.Fatalf("e2/c: %+v", evs)
	}
	// a and d converge on e2; the class becomes loop-free only once the
	// last device synchronizes.
	if evs := recv(r.a, "e2", insBlock(5, bdd.True, 0, fib.Forward(r.b))); len(evs) != 0 {
		t.Fatalf("e2/a: %+v", evs)
	}
	final := recv(r.d, "e2", insBlock(6, bdd.True, 0, r.hostD))
	if len(final) != 1 || final[0].Event.Loop != LoopFree || final[0].Epoch != "e2" {
		t.Fatalf("final events = %+v, want loop-free@e2", final)
	}
	st := d.Stats()
	if st.VerifiersCreated != 2 || st.VerifiersStopped != 1 {
		t.Fatalf("lifecycle stats = %+v", st)
	}
}

func TestDispatcherBackfillOnLateVerifier(t *testing.T) {
	// A verifier created for a later epoch must replay earlier queued
	// updates so its FIB snapshot is complete.
	r := newRig()
	created := 0
	mk := func(Epoch) *Verifier {
		created++
		return r.verifier(Check{
			Name: "reach", Kind: CheckReach, Space: bdd.True,
			Expr:    spec.MustParse("a .* d"),
			Sources: []topo.NodeID{r.a},
			IsDest:  func(n topo.NodeID) bool { return n == r.d },
		})
	}
	d := NewDispatcher(mk)
	// a, c, d send e1 updates (a full working path except b).
	for i, dev := range []topo.NodeID{r.a, r.c, r.d} {
		act := fib.Forward(dev + 1)
		if dev == r.d {
			act = r.hostD
		}
		if _, err := d.Receive(Msg{Device: dev, Epoch: "e1",
			Updates: insBlock(int64(i+1), bdd.True, 0, act)}); err != nil {
			t.Fatal(err)
		}
	}
	// a moves to e2 with the same FIB content (new rule id).
	if _, err := d.Receive(Msg{Device: r.a, Epoch: "e2", Updates: []fib.Update{
		{Op: fib.Delete, Rule: fib.Rule{ID: 1, Pri: 0}},
		{Op: fib.Insert, Rule: fib.Rule{ID: 10, Match: bdd.True, Pri: 0, Action: fib.Forward(r.b)}},
	}}); err != nil {
		t.Fatal(err)
	}
	v2, ok := d.Verifier("e2")
	if !ok {
		t.Fatal("no verifier for e2")
	}
	// The e2 verifier must have replayed c's and d's e1 updates into its
	// snapshot (1 rule each) even though they are not synchronized.
	if v2.Transformer().NumRules() != 3 {
		t.Fatalf("e2 snapshot has %d rules, want 3", v2.Transformer().NumRules())
	}
	if v2.SynchronizedCount() != 1 {
		t.Fatalf("e2 synchronized count = %d, want 1 (only a)", v2.SynchronizedCount())
	}
	// b finally reports e2 (b→c): then c and d report e2 unchanged FIBs —
	// empty update blocks still synchronize them.
	if _, err := d.Receive(Msg{Device: r.b, Epoch: "e2",
		Updates: insBlock(20, bdd.True, 0, fib.Forward(r.c))}); err != nil {
		t.Fatal(err)
	}
	var last []TaggedEvent
	for _, dev := range []topo.NodeID{r.c, r.d} {
		evs, err := d.Receive(Msg{Device: dev, Epoch: "e2"})
		if err != nil {
			t.Fatal(err)
		}
		last = append(last, evs...)
	}
	if len(last) != 1 || last[0].Event.Verdict != reach.Satisfied || last[0].Epoch != "e2" {
		t.Fatalf("final events = %+v, want satisfied@e2", last)
	}
	if created != 2 {
		t.Fatalf("verifiers created = %d, want 2", created)
	}
}

package ce2d

import (
	"fmt"

	"repro/internal/fib"
)

// This file implements Appendix D.1: consistent model construction for
// vector-based control planes (e.g. BGP), where there is no global state
// snapshot to hash into an epoch tag. Instead, every FIB update carries
// causal-relation information — what announcement triggered it and how
// many announcements the device sent in response — and the dispatcher
// runs a centralized version of the interdomain convergence-detection
// algorithm the paper cites: an event has converged when every
// announcement it transitively caused has been consumed and produced no
// further announcements.

// CausalMsg is one FIB update message from a vector-protocol device
// agent.
type CausalMsg struct {
	Device fib.DeviceID
	// Event identifies the root cause (e.g. the original route withdraw).
	Event string
	// Consumed is the number of announcements for Event this device
	// consumed before computing this FIB update.
	Consumed int
	// Emitted is the number of announcements the device sent to peers
	// immediately after this FIB update.
	Emitted int
	Updates []fib.Update
}

// VectorTracker decides when a vector-protocol event has converged: the
// announcement balance (emitted minus consumed, seeded by the event's
// initial announcements) returns to zero and no device still owes a
// report.
type VectorTracker struct {
	// outstanding counts announcements in flight per event.
	outstanding map[string]int
	// seen records devices that reported for an event.
	seen map[string]map[fib.DeviceID]bool
}

// NewVectorTracker returns an empty tracker.
func NewVectorTracker() *VectorTracker {
	return &VectorTracker{
		outstanding: make(map[string]int),
		seen:        make(map[string]map[fib.DeviceID]bool),
	}
}

// Start registers a new root event with its initial announcement count
// (e.g. a withdraw sent to n peers).
func (t *VectorTracker) Start(event string, announcements int) {
	if announcements <= 0 {
		panic("ce2d: event must start with at least one announcement")
	}
	if _, dup := t.outstanding[event]; dup {
		panic(fmt.Sprintf("ce2d: duplicate event %q", event))
	}
	t.outstanding[event] = announcements
	t.seen[event] = make(map[fib.DeviceID]bool)
}

// Observe processes one causal message and reports whether the event is
// now converged: every announcement consumed and none left in flight.
func (t *VectorTracker) Observe(m CausalMsg) (converged bool, err error) {
	bal, ok := t.outstanding[m.Event]
	if !ok {
		return false, fmt.Errorf("ce2d: message for unknown event %q", m.Event)
	}
	if m.Consumed <= 0 {
		return false, fmt.Errorf("ce2d: device %d consumed nothing for event %q", m.Device, m.Event)
	}
	bal += m.Emitted - m.Consumed
	if bal < 0 {
		return false, fmt.Errorf("ce2d: event %q: more announcements consumed than sent", m.Event)
	}
	t.outstanding[m.Event] = bal
	t.seen[m.Event][m.Device] = true
	return bal == 0, nil
}

// Converged reports whether the event's announcement balance is zero.
func (t *VectorTracker) Converged(event string) bool {
	bal, ok := t.outstanding[event]
	return ok && bal == 0
}

// Participants returns how many devices reported FIB changes for the
// event — the devices whose updates belong in the event's model.
func (t *VectorTracker) Participants(event string) int {
	return len(t.seen[event])
}

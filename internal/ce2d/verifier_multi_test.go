package ce2d

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/reach"
	"repro/internal/spec"
	"repro/internal/topo"
)

// mrig is the multi-destination test rig: s — {m1, m2} — {d1, d2} over
// an 8-bit dst space.
type mrig struct {
	g *topo.Graph
	s *hs.Space
}

func multiRig() (*mrig, topo.NodeID, topo.NodeID, topo.NodeID, topo.NodeID, topo.NodeID) {
	g := topo.New()
	s := g.AddNode("s", topo.RoleSwitch, -1)
	m1 := g.AddNode("m1", topo.RoleSwitch, -1)
	m2 := g.AddNode("m2", topo.RoleSwitch, -1)
	d1 := g.AddNode("d1", topo.RoleSwitch, -1)
	d2 := g.AddNode("d2", topo.RoleSwitch, -1)
	g.AddLink(s, m1)
	g.AddLink(s, m2)
	g.AddLink(m1, d1)
	g.AddLink(m2, d2)
	r := &mrig{g: g, s: hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))}
	return r, s, m1, m2, d1, d2
}

func TestVerifierAnycastCheck(t *testing.T) {
	r, s, m1, _, d1, d2 := multiRig()
	v := NewVerifier(Config{
		Topo:   r.g,
		Engine: r.s.E,
		Checks: []Check{{
			Name: "anycast", Kind: CheckAnycast, Space: bdd.True,
			Expr:    spec.MustParse("s .* >"),
			Sources: []topo.NodeID{s},
			Dests:   []topo.NodeID{d1, d2},
		}},
	})
	deliver := fib.Forward(topo.NodeID(r.g.N()))
	sync := func(dev topo.NodeID, act fib.Action, id int64) []Event {
		t.Helper()
		if err := v.ApplyUpdates(dev, insBlock(id, bdd.True, 0, act)); err != nil {
			t.Fatal(err)
		}
		evs, err := v.MarkSynchronized(dev)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	if evs := sync(s, fib.Forward(m1), 1); len(evs) != 0 {
		t.Fatalf("after s: %+v", evs)
	}
	if evs := sync(m1, fib.Forward(d1), 2); len(evs) != 0 {
		t.Fatalf("after m1: %+v", evs)
	}
	evs := sync(d1, deliver, 3)
	if len(evs) != 1 || evs[0].Verdict != reach.Satisfied {
		t.Fatalf("anycast should settle satisfied: %+v", evs)
	}
}

func TestVerifierMulticastCheckEarlyFail(t *testing.T) {
	r, s, m1, _, d1, d2 := multiRig()
	v := NewVerifier(Config{
		Topo:   r.g,
		Engine: r.s.E,
		Checks: []Check{{
			Name: "mcast", Kind: CheckMulticast, Space: bdd.True,
			Expr:    spec.MustParse("s .* >"),
			Sources: []topo.NodeID{s},
			Dests:   []topo.NodeID{d1, d2},
		}},
	})
	// s forwards only toward m1: d2's branch dies immediately.
	if err := v.ApplyUpdates(s, insBlock(1, bdd.True, 0, fib.Forward(m1))); err != nil {
		t.Fatal(err)
	}
	evs, err := v.MarkSynchronized(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Verdict != reach.Unsatisfied {
		t.Fatalf("multicast should fail early: %+v", evs)
	}
}

func TestVerifierCoverageViaCoverKeyword(t *testing.T) {
	// A CheckReach whose expression is "cover s . >" becomes a coverage
	// check: s must keep BOTH one-hop branches alive.
	r, s, m1, m2, _, _ := multiRig()
	dag := map[topo.NodeID][]topo.NodeID{s: {m1, m2}}
	v := NewVerifier(Config{
		Topo:   r.g,
		Engine: r.s.E,
		Checks: []Check{{
			Name: "cover", Kind: CheckReach, Space: bdd.True,
			Expr:    spec.MustParse("cover s >"),
			Sources: []topo.NodeID{s},
			IsDest:  func(n topo.NodeID) bool { return n == m1 || n == m2 },
		}},
		Succ: func(n topo.NodeID) []topo.NodeID { return dag[n] },
	})
	// s installs a single branch: coverage violated immediately.
	if err := v.ApplyUpdates(s, insBlock(1, bdd.True, 0, fib.Forward(m1))); err != nil {
		t.Fatal(err)
	}
	evs, err := v.MarkSynchronized(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Verdict != reach.Unsatisfied {
		t.Fatalf("coverage violation not early-detected: %+v", evs)
	}
}

func TestVerifierAnycastClassSplit(t *testing.T) {
	// s splits the space: lower half via m1 (anycast OK), upper half
	// dropped (anycast fails) — per-class verdicts must diverge.
	r, s, m1, _, d1, d2 := multiRig()
	lower := r.s.Prefix("dst", 0x00, 1)
	v := NewVerifier(Config{
		Topo:   r.g,
		Engine: r.s.E,
		Checks: []Check{{
			Name: "anycast", Kind: CheckAnycast, Space: bdd.True,
			Expr:    spec.MustParse("s .* >"),
			Sources: []topo.NodeID{s},
			Dests:   []topo.NodeID{d1, d2},
		}},
	})
	err := v.ApplyUpdates(s, []fib.Update{
		{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: lower, Pri: 1, Action: fib.Forward(m1)}},
		{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: bdd.True, Pri: 0, Action: fib.Drop}},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, err := v.MarkSynchronized(s)
	if err != nil {
		t.Fatal(err)
	}
	// Upper half: unsatisfied immediately (source drops, no dest ever
	// reachable).
	if len(evs) != 1 || evs[0].Verdict != reach.Unsatisfied || evs[0].Class != r.s.E.Not(lower) {
		t.Fatalf("upper-half anycast failure not detected: %+v", evs)
	}
	// Complete the lower-half path.
	deliver := fib.Forward(topo.NodeID(r.g.N()))
	for _, step := range []struct {
		dev topo.NodeID
		act fib.Action
		id  int64
	}{{m1, fib.Forward(d1), 3}, {d1, deliver, 4}} {
		if err := v.ApplyUpdates(step.dev, insBlock(step.id, bdd.True, 0, step.act)); err != nil {
			t.Fatal(err)
		}
		var err error
		evs, err = v.MarkSynchronized(step.dev)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(evs) != 1 || evs[0].Verdict != reach.Satisfied || evs[0].Class != lower {
		t.Fatalf("lower-half anycast should settle satisfied: %+v", evs)
	}
}

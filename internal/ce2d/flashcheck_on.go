//go:build flashcheck

package ce2d

import (
	"fmt"

	"repro/internal/fib"
)

// Failf is the invariant-violation sink. It panics by default so a
// violation stops the run at the first inconsistent state; tests
// override it to capture the diagnostic.
var Failf = func(format string, args ...any) {
	panic("flashcheck: " + fmt.Sprintf(format, args...))
}

// checkEpochMonotonic asserts per-device epoch monotonicity (§4.1):
// delivery from one agent to the dispatcher is serialized, so once a
// device has moved past an epoch, that epoch is abandoned from its
// point of view and must never reappear in its stream. A revisit means
// the happens-before order the tracker derives is wrong, and every
// consistency conclusion downstream of it is unsound. Called before the
// tracker observes the message, while the device's previous epoch is
// still known.
func (d *Dispatcher) checkEpochMonotonic(dev fib.DeviceID, tag Epoch) {
	if d.fcAbandoned == nil {
		d.fcAbandoned = make(map[fib.DeviceID]map[Epoch]bool)
	}
	ab := d.fcAbandoned[dev]
	if ab == nil {
		ab = make(map[Epoch]bool)
		d.fcAbandoned[dev] = ab
	}
	if ab[tag] {
		Failf("ce2d: device %d revisited abandoned epoch %s (per-device epoch monotonicity, §4.1: serialized agent delivery cannot reorder epochs)", dev, tag)
	}
	if last, ok := d.tracker.Last(dev); ok && last != tag {
		ab[last] = true
	}
}

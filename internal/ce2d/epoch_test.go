package ce2d

import (
	"testing"

	"repro/internal/fib"
)

func TestEpochOfDeterministicAndOrderFree(t *testing.T) {
	a := EpochOf(map[string]uint64{"link1": 1, "link2": 0})
	b := EpochOf(map[string]uint64{"link2": 0, "link1": 1})
	if a != b {
		t.Error("EpochOf depends on map order")
	}
	c := EpochOf(map[string]uint64{"link1": 2, "link2": 0})
	if a == c {
		t.Error("different states collide")
	}
	if len(a) != 16 {
		t.Errorf("tag %q has unexpected length", a)
	}
}

// TestTrackerPaperScenario replays the example of §4.1: failures of
// (S,W) then (B,Y) with tags t1=[1,0], t2=[0,1], t3=[1,1].
func TestTrackerPaperScenario(t *testing.T) {
	tr := NewTracker()
	const (
		s fib.DeviceID = iota
		a
		b
		e
	)
	t1 := Epoch("t1")
	t2 := Epoch("t2")
	t3 := Epoch("t3")

	// T1: S reports t1; A and B report t2.
	if act, _ := tr.Observe(s, t1); !act {
		t.Fatal("t1 should be active")
	}
	if act, _ := tr.Observe(a, t2); !act {
		t.Fatal("t2 should be active")
	}
	if act, _ := tr.Observe(b, t2); !act {
		t.Fatal("t2 should stay active")
	}
	if !tr.Active(t1) || !tr.Active(t2) {
		t.Fatal("both t1 and t2 are potential converged states at T1")
	}

	// T2: S, A, B report t3 — t1 and t2 become inactive.
	act, deact := tr.Observe(s, t3)
	if !act {
		t.Fatal("t3 should be active")
	}
	if len(deact) != 1 || deact[0] != t1 {
		t.Fatalf("observing t3 from S should deactivate t1, got %v", deact)
	}
	_, deact = tr.Observe(a, t3)
	if len(deact) != 1 || deact[0] != t2 {
		t.Fatalf("observing t3 from A should deactivate t2, got %v", deact)
	}
	if _, deact = tr.Observe(b, t3); len(deact) != 0 {
		t.Fatalf("t2 already deactivated, got %v", deact)
	}

	// E still reports t2: t2 is known-stale, must NOT reactivate.
	if act, _ := tr.Observe(e, t2); act {
		t.Fatal("stale t2 must not become active again")
	}
	if tr.Active(t2) {
		t.Fatal("t2 in active set")
	}

	// E finally reports t3.
	if act, _ := tr.Observe(e, t3); !act {
		t.Fatal("t3 should remain active")
	}
	devs := tr.SynchronizedDevices(t3)
	if len(devs) != 4 {
		t.Fatalf("synchronized devices for t3 = %v, want all 4", devs)
	}
	if got := tr.ActiveEpochs(); len(got) != 1 || got[0] != t3 {
		t.Fatalf("active epochs = %v, want [t3]", got)
	}
}

func TestTrackerRepeatedSameEpoch(t *testing.T) {
	tr := NewTracker()
	if act, deact := tr.Observe(1, "x"); !act || len(deact) != 0 {
		t.Fatal("first observation wrong")
	}
	if act, deact := tr.Observe(1, "x"); !act || len(deact) != 0 {
		t.Fatal("same-epoch repeat must be a harmless no-op")
	}
	if e, ok := tr.Last(1); !ok || e != "x" {
		t.Fatal("Last wrong")
	}
	if _, ok := tr.Last(99); ok {
		t.Fatal("Last of unseen device should be absent")
	}
}

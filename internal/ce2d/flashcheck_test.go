//go:build flashcheck

package ce2d

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fib"
)

// TestEpochRevisitDetected asserts the dispatcher's flashcheck
// monotonicity invariant: a device that moves from epoch e1 to e2 has
// abandoned e1, and a later e1-tagged message from the same device must
// trip the assertion (§4.1: serialized agent delivery cannot reorder
// epochs).
func TestEpochRevisitDetected(t *testing.T) {
	var msgs []string
	orig := Failf
	Failf = func(format string, args ...any) {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	}
	defer func() { Failf = orig }()

	r := newRig()
	disp := NewDispatcher(func(Epoch) *Verifier { return r.verifier() })

	feed := func(dev fib.DeviceID, e Epoch) {
		t.Helper()
		if _, err := disp.Receive(Msg{Device: dev, Epoch: e}); err != nil {
			t.Fatalf("Receive(%d, %s): %v", dev, e, err)
		}
	}

	feed(1, "e1")
	feed(2, "e1")
	feed(1, "e2") // device 1 abandons e1
	feed(2, "e2")
	if len(msgs) != 0 {
		t.Fatalf("monotone stream tripped the invariant: %v", msgs)
	}

	feed(1, "e1") // device 1 revisits its abandoned epoch
	if len(msgs) == 0 {
		t.Fatal("flashcheck did not detect the epoch revisit")
	}
	if !strings.Contains(msgs[0], "revisited abandoned epoch e1") {
		t.Errorf("diagnostic does not name the revisited epoch: %q", msgs[0])
	}
	if !strings.Contains(msgs[0], "device 1") {
		t.Errorf("diagnostic does not name the device: %q", msgs[0])
	}
}

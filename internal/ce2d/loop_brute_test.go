package ce2d

import (
	"math/rand"
	"testing"

	"repro/internal/reach"
	"repro/internal/topo"
)

// TestLoopDetectorVsBruteForce checks Algorithm 3's hyper-node
// compression against ground truth: on small random graphs with a random
// subset of devices synchronized, enumerate EVERY assignment of next hops
// (or exits, where allowed) to the unsynchronized devices and compute
// whether a loop {always, never, sometimes} occurs. The detector must
// report:
//
//	LoopFound  ⇒ every completion loops (or a synchronized cycle exists);
//	LoopFree   ⇒ no completion loops (only claimed at full sync);
//	LoopUnknown⇒ anything.
//
// This is the soundness property of §4.3: early reports are consistent.
func TestLoopDetectorVsBruteForce(t *testing.T) {
	for trial := 0; trial < 150; trial++ {
		rng := rand.New(rand.NewSource(int64(60000 + trial)))
		n := 3 + rng.Intn(3) // 3..5 devices: enumeration stays tiny
		g := topo.New()
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), topo.RoleSwitch, -1)
		}
		for i := 1; i < n; i++ {
			g.AddLink(topo.NodeID(i), topo.NodeID(rng.Intn(i)))
		}
		for e := 0; e < rng.Intn(3); e++ {
			a, b := topo.NodeID(rng.Intn(n)), topo.NodeID(rng.Intn(n))
			if a != b {
				g.AddLink(a, b)
			}
		}
		// Random exit capability, then random sync behaviors consistent
		// with it: canExit promises which devices may deliver, so a
		// device synchronized as delivering must be exit-capable.
		canExit := make([]bool, n)
		for i := range canExit {
			canExit[i] = rng.Intn(3) == 0
		}
		sync := map[topo.NodeID]reach.SyncState{}
		for d := 0; d < n; d++ {
			if rng.Intn(2) == 0 {
				continue
			}
			nbrs := g.Neighbors(topo.NodeID(d))
			if canExit[d] && rng.Intn(3) == 0 {
				sync[topo.NodeID(d)] = reach.SyncState{Delivers: true}
				continue
			}
			sync[topo.NodeID(d)] = reach.SyncState{
				NextHops: []topo.NodeID{nbrs[rng.Intn(len(nbrs))]},
			}
		}
		if len(sync) == 0 {
			continue
		}

		// Ground truth: enumerate completions. Each unsynchronized device
		// chooses a neighbor, or exits if it canExit.
		var unsync []topo.NodeID
		for d := 0; d < n; d++ {
			if _, ok := sync[topo.NodeID(d)]; !ok {
				unsync = append(unsync, topo.NodeID(d))
			}
		}
		choicesOf := func(d topo.NodeID) []int {
			// Index i < deg = neighbor i; i == deg = exit (if allowed).
			deg := len(g.Neighbors(d))
			c := make([]int, 0, deg+1)
			for i := 0; i < deg; i++ {
				c = append(c, i)
			}
			if canExit[d] {
				c = append(c, deg)
			}
			return c
		}
		loopPossible, noloopPossible := false, false
		var enumerate func(i int, assign map[topo.NodeID]int)
		enumerate = func(i int, assign map[topo.NodeID]int) {
			if loopPossible && noloopPossible {
				return
			}
			if i == len(unsync) {
				if completionLoops(g, sync, assign) {
					loopPossible = true
				} else {
					noloopPossible = true
				}
				return
			}
			for _, c := range choicesOf(unsync[i]) {
				assign[unsync[i]] = c
				enumerate(i+1, assign)
			}
			delete(assign, unsync[i])
		}
		enumerate(0, map[topo.NodeID]int{})
		if len(unsync) == 0 {
			// Full sync: exactly one completion.
		}

		// Drive the detector with the same sync set.
		ld := NewLoopDetector(g, func(d topo.NodeID) bool { return canExit[d] })
		var res LoopResult
		for d, st := range sync {
			r, err := ld.Synchronize(d, st)
			if err != nil {
				t.Fatal(err)
			}
			if r == LoopFound {
				res = LoopFound
			} else if res != LoopFound {
				res = r
			}
		}
		switch res {
		case LoopFound:
			if !loopPossible {
				t.Fatalf("trial %d: LoopFound but no completion loops", trial)
			}
			if noloopPossible && !syncOnlyCycle(g, sync) {
				t.Fatalf("trial %d: LoopFound but a loop-free completion exists "+
					"and no synchronized cycle", trial)
			}
		case LoopFree:
			if loopPossible {
				t.Fatalf("trial %d: LoopFree but a looping completion exists", trial)
			}
			if len(unsync) != 0 {
				t.Fatalf("trial %d: LoopFree with %d unsynchronized devices", trial, len(unsync))
			}
		}
	}
}

// completionLoops walks every start under a concrete assignment and
// reports whether any walk cycles. Unsynchronized device d uses
// assign[d]: neighbor index, or degree = exit.
func completionLoops(g *topo.Graph, sync map[topo.NodeID]reach.SyncState, assign map[topo.NodeID]int) bool {
	next := func(d topo.NodeID) (topo.NodeID, bool) {
		if st, ok := sync[d]; ok {
			if len(st.NextHops) == 0 {
				return 0, false
			}
			return st.NextHops[0], true
		}
		nbrs := g.Neighbors(d)
		c := assign[d]
		if c >= len(nbrs) {
			return 0, false // exits
		}
		return nbrs[c], true
	}
	for start := 0; start < g.N(); start++ {
		cur := topo.NodeID(start)
		for hops := 0; ; hops++ {
			nh, ok := next(cur)
			if !ok {
				break
			}
			cur = nh
			if hops > g.N() {
				return true
			}
		}
	}
	return false
}

// syncOnlyCycle reports whether the synchronized next-hop edges alone
// contain a cycle (a deterministic loop regardless of completions).
func syncOnlyCycle(g *topo.Graph, sync map[topo.NodeID]reach.SyncState) bool {
	for start := range sync {
		cur := start
		for hops := 0; ; hops++ {
			st, ok := sync[cur]
			if !ok || len(st.NextHops) == 0 {
				break
			}
			cur = st.NextHops[0]
			if hops > g.N() {
				return true
			}
		}
	}
	return false
}

package ce2d

import (
	"fmt"

	"repro/internal/reach"
	"repro/internal/spec"
	"repro/internal/topo"
)

// This file implements the Appendix D.2 extensions of the paper: early
// detection for anycast, multicast, and coverage requirements.
//
//   - Anycast: of the K destination groups, exactly one must be
//     reachable by a compliant path.
//   - Multicast: all K destinations must be reachable.
//   - Coverage: *all* paths matching the expression must exist ("all
//     redundant shortest paths should be available"): every synchronized
//     device must forward to every one of its successors in the
//     verification graph.

// MultiVerdict is the outcome of a multi-destination check.
type MultiVerdict = reach.Verdict

// MultiPath tracks one anycast or multicast requirement: one
// verification graph per destination, with the combination rule of
// Appendix D.2.
type MultiPath struct {
	anycast bool
	graphs  []*reach.VGraph
	// settled caches each graph's deterministic verdict.
	verdicts []reach.Verdict
}

// NewAnycast builds an anycast requirement: packets from the sources must
// reach exactly one of the destinations along a path matching expr.
func NewAnycast(g *topo.Graph, expr *spec.Expr, sources, dests []topo.NodeID, succ func(topo.NodeID) []topo.NodeID) *MultiPath {
	return newMultiPath(g, expr, sources, dests, succ, true)
}

// NewMulticast builds a multicast requirement: packets from the sources
// must reach every destination along a path matching expr.
func NewMulticast(g *topo.Graph, expr *spec.Expr, sources, dests []topo.NodeID, succ func(topo.NodeID) []topo.NodeID) *MultiPath {
	return newMultiPath(g, expr, sources, dests, succ, false)
}

func newMultiPath(g *topo.Graph, expr *spec.Expr, sources, dests []topo.NodeID, succ func(topo.NodeID) []topo.NodeID, anycast bool) *MultiPath {
	if succ == nil {
		succ = g.Neighbors
	}
	m := &MultiPath{anycast: anycast}
	for _, d := range dests {
		d := d
		vg := reach.NewVGraphEdges(g, expr, sources, func(n topo.NodeID) bool { return n == d }, succ)
		m.graphs = append(m.graphs, vg)
		m.verdicts = append(m.verdicts, reach.Unknown)
	}
	return m
}

// Clone deep-copies the multi-destination state (for EC splits).
func (m *MultiPath) Clone() *MultiPath {
	c := &MultiPath{anycast: m.anycast}
	for _, vg := range m.graphs {
		c.graphs = append(c.graphs, vg.Clone())
	}
	c.verdicts = append([]reach.Verdict(nil), m.verdicts...)
	return c
}

// Synchronize records a device's converged behavior in every per-
// destination graph.
func (m *MultiPath) Synchronize(dev topo.NodeID, st reach.SyncState) error {
	for i, vg := range m.graphs {
		if m.verdicts[i] != reach.Unknown {
			continue
		}
		if err := vg.Synchronize(dev, st); err != nil {
			return fmt.Errorf("ce2d: dest %d: %w", i, err)
		}
	}
	return nil
}

// Verdict combines the per-destination verdicts (Appendix D.2):
//
//	anycast:   exactly one satisfied and the rest unsatisfied ⇒ satisfied;
//	           two satisfied, or all unsatisfied ⇒ unsatisfied (early);
//	multicast: all satisfied ⇒ satisfied; any unsatisfied ⇒ unsatisfied.
func (m *MultiPath) Verdict() reach.Verdict {
	sat, unsat := 0, 0
	for i, vg := range m.graphs {
		if m.verdicts[i] == reach.Unknown {
			m.verdicts[i] = vg.Verdict()
		}
		switch m.verdicts[i] {
		case reach.Satisfied:
			sat++
		case reach.Unsatisfied:
			unsat++
		}
	}
	k := len(m.graphs)
	if m.anycast {
		switch {
		case sat > 1 || unsat == k:
			return reach.Unsatisfied
		case sat == 1 && unsat == k-1:
			return reach.Satisfied
		default:
			return reach.Unknown
		}
	}
	switch {
	case unsat > 0:
		return reach.Unsatisfied
	case sat == k:
		return reach.Satisfied
	default:
		return reach.Unknown
	}
}

// Coverage tracks a coverage requirement: every path matching the
// expression must exist in the data plane. Each synchronized device must
// forward to all of its successors in the verification graph; a missing
// edge is an immediately consistent violation (the device will not
// change within the epoch).
type Coverage struct {
	g    *topo.Graph
	dfa  spec.Machine
	succ func(topo.NodeID) []topo.NodeID
	// required[dev] is the set of devices dev must forward to: the
	// topology successors v of dev for which some live DFA state of dev
	// steps to a live state via v.
	required map[topo.NodeID][]topo.NodeID
	synced   map[topo.NodeID]bool
	violated bool
}

// NewCoverage builds a coverage requirement from the expression's product
// with the topology: for every product node (dev, q) reachable from the
// sources, dev must forward toward every product successor's device.
func NewCoverage(g *topo.Graph, expr *spec.Expr, sources []topo.NodeID, isDest func(topo.NodeID) bool, succ func(topo.NodeID) []topo.NodeID) *Coverage {
	if succ == nil {
		succ = g.Neighbors
	}
	dfa := expr.CompileMachine(g, isDest)
	c := &Coverage{
		g: g, dfa: dfa, succ: succ,
		required: make(map[topo.NodeID][]topo.NodeID),
		synced:   make(map[topo.NodeID]bool),
	}
	// BFS the product space, collecting required forwarding edges.
	type pnode struct {
		dev topo.NodeID
		q   int
	}
	seen := map[pnode]bool{}
	var queue []pnode
	for _, s := range sources {
		if q := dfa.Step(dfa.Start(), s); q != spec.Dead {
			n := pnode{s, q}
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	reqSet := map[topo.NodeID]map[topo.NodeID]bool{}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		for _, v := range succ(n.dev) {
			nq := dfa.Step(n.q, v)
			if nq == spec.Dead {
				continue
			}
			if reqSet[n.dev] == nil {
				reqSet[n.dev] = map[topo.NodeID]bool{}
			}
			if !reqSet[n.dev][v] {
				reqSet[n.dev][v] = true
				c.required[n.dev] = append(c.required[n.dev], v)
			}
			nn := pnode{v, nq}
			if !seen[nn] {
				seen[nn] = true
				queue = append(queue, nn)
			}
		}
	}
	return c
}

// Clone deep-copies the coverage state (for EC splits). The immutable
// required map is shared.
func (c *Coverage) Clone() *Coverage {
	n := &Coverage{
		g: c.g, dfa: c.dfa, succ: c.succ, required: c.required,
		synced:   make(map[topo.NodeID]bool, len(c.synced)),
		violated: c.violated,
	}
	for k, v := range c.synced {
		n.synced[k] = v
	}
	return n
}

// Required returns the forwarding successors the requirement demands of a
// device (for tests and diagnostics).
func (c *Coverage) Required(dev topo.NodeID) []topo.NodeID { return c.required[dev] }

// Synchronize checks the device against its required successor set.
func (c *Coverage) Synchronize(dev topo.NodeID, st reach.SyncState) error {
	if c.synced[dev] {
		return nil
	}
	c.synced[dev] = true
	have := make(map[topo.NodeID]bool, len(st.NextHops))
	for _, nh := range st.NextHops {
		have[nh] = true
	}
	for _, want := range c.required[dev] {
		if !have[want] {
			c.violated = true
		}
	}
	return nil
}

// Verdict reports the coverage result: unsatisfied as soon as any
// synchronized device misses a required edge; satisfied when every
// device carrying requirements has synchronized cleanly.
func (c *Coverage) Verdict() reach.Verdict {
	if c.violated {
		return reach.Unsatisfied
	}
	for dev := range c.required {
		if !c.synced[dev] {
			return reach.Unknown
		}
	}
	return reach.Satisfied
}

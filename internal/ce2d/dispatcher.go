package ce2d

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/fib"
	"repro/internal/obs"
	"repro/internal/pred"
)

// ErrBadEpoch reports an epoch-ordering violation: a device kept sending
// updates for an epoch after declaring itself synchronized with it.
// Callers detect it with errors.Is; the flash package re-exports it as
// flash.ErrBadEpoch.
var ErrBadEpoch = errors.New("epoch ordering violated")

// Msg is one epoch-tagged FIB update message from a device agent.
// Delivery between one agent and the dispatcher is serialized (in-order),
// as §4.1 requires; there is no ordering constraint across devices.
type Msg struct {
	Device  fib.DeviceID
	Epoch   Epoch
	Updates []fib.Update
}

// TaggedEvent is a deterministic early-detection result together with the
// epoch it is consistent with.
type TaggedEvent struct {
	Epoch Epoch
	Event Event
}

// DispatcherStats counts verifier lifecycle activity.
type DispatcherStats struct {
	Messages         int
	VerifiersCreated int
	VerifiersStopped int
}

// Dispatcher implements the CE2D dispatcher of Figure 1: it tracks epoch
// activity, manages the life cycle of per-epoch verifiers, and routes
// device update queues to them (§4.1, "Dispatching Consistent FIB
// Updates"). It is single-goroutine; the wire server serializes into it.
type Dispatcher struct {
	tracker *Tracker
	factory func(Epoch) *Verifier

	queues    map[fib.DeviceID][]Msg
	verifiers map[Epoch]*Verifier
	fed       map[Epoch]map[fib.DeviceID]int // per-verifier consumed queue prefix
	stats     DispatcherStats

	m      dmetrics
	born   map[Epoch]time.Time // verifier creation times (instrumented only)
	queued int                 // total queued messages across devices

	// fcAbandoned tracks, per device, epochs the device has moved past.
	// Populated only by flashcheck builds (flashcheck_on.go); stays nil
	// otherwise.
	fcAbandoned map[fib.DeviceID]map[Epoch]bool
}

// dmetrics holds resolved observability handles; the zero value is the
// uninstrumented no-op state (all calls are nil-receiver no-ops).
type dmetrics struct {
	messages        *obs.Counter   // agent messages received
	events          *obs.Counter   // deterministic detection results emitted
	created         *obs.Counter   // verifiers created
	stopped         *obs.Counter   // verifiers stopped (epoch superseded)
	verifiersLive   *obs.Gauge     // currently live per-epoch verifiers
	queueDepth      *obs.Gauge     // retained messages across device queues
	devicesSynced   *obs.Gauge     // synchronized devices of the last-fed verifier
	stragglerWaitNs *obs.Histogram // verifier creation → device sync delay
}

// Instrument attaches the dispatcher to an observability registry. The
// straggler_wait_ns histogram is the paper's long-tail story (Figure 9):
// it records, for each device that synchronizes with an epoch, how long
// the epoch's verifier had been waiting for it — CE2D reports results
// without waiting for that tail, and the histogram shows how long the
// tail actually is. Instrument(nil) is a no-op.
func (d *Dispatcher) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	d.m = dmetrics{
		messages:        r.Counter("messages"),
		events:          r.Counter("events"),
		created:         r.Counter("verifiers_created"),
		stopped:         r.Counter("verifiers_stopped"),
		verifiersLive:   r.Gauge("verifiers_live"),
		queueDepth:      r.Gauge("queue_depth"),
		devicesSynced:   r.Gauge("devices_synced"),
		stragglerWaitNs: r.Histogram("straggler_wait_ns"),
	}
	d.born = make(map[Epoch]time.Time)
}

// NewDispatcher creates a dispatcher; factory builds a fresh verifier for
// an epoch when it first becomes active.
func NewDispatcher(factory func(Epoch) *Verifier) *Dispatcher {
	return &Dispatcher{
		tracker:   NewTracker(),
		factory:   factory,
		queues:    make(map[fib.DeviceID][]Msg),
		verifiers: make(map[Epoch]*Verifier),
		fed:       make(map[Epoch]map[fib.DeviceID]int),
	}
}

// Tracker exposes the epoch tracker (read-only use).
func (d *Dispatcher) Tracker() *Tracker { return d.tracker }

// Stats returns lifecycle counters.
func (d *Dispatcher) Stats() DispatcherStats { return d.stats }

// Verifier returns the live verifier for an epoch, if any.
func (d *Dispatcher) Verifier(e Epoch) (*Verifier, bool) {
	v, ok := d.verifiers[e]
	return v, ok
}

// Current returns the most-converged live verifier — the one serving
// plane snapshots fork from. Among active epochs with a live verifier it
// picks the one with the most synchronized devices, breaking ties toward
// the lexicographically larger (typically newer) epoch tag.
func (d *Dispatcher) Current() (Epoch, *Verifier, bool) {
	var (
		bestEpoch Epoch
		best      *Verifier
		found     bool
	)
	for _, e := range d.tracker.ActiveEpochs() {
		v, ok := d.verifiers[e]
		if !ok {
			continue
		}
		if !found ||
			v.SynchronizedCount() > best.SynchronizedCount() ||
			(v.SynchronizedCount() == best.SynchronizedCount() && e > bestEpoch) {
			bestEpoch, best, found = e, v, true
		}
	}
	return bestEpoch, best, found
}

// EachVerifier visits every live verifier in sorted epoch order.
func (d *Dispatcher) EachVerifier(f func(Epoch, *Verifier)) {
	epochs := make([]Epoch, 0, len(d.verifiers))
	for e := range d.verifiers {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		f(e, d.verifiers[e])
	}
}

// Rebind points every live verifier at a different predicate engine
// (see Verifier.Rebind). Queued message refs are rewritten separately
// through Dispatcher.RemapRefs; the two calls together complete a
// hybrid cutover for the dispatcher's state.
func (d *Dispatcher) Rebind(e pred.Engine) {
	for _, v := range d.verifiers {
		v.Rebind(e)
	}
}

// Receive processes one message: queue it, update epoch activity, stop
// superseded verifiers, and feed the active verifier. It returns any new
// deterministic detection results.
func (d *Dispatcher) Receive(m Msg) ([]TaggedEvent, error) {
	d.stats.Messages++
	d.m.messages.Inc()
	d.queues[m.Device] = append(d.queues[m.Device], m)
	d.queued++
	d.m.queueDepth.Set(int64(d.queued))

	d.checkEpochMonotonic(m.Device, m.Epoch)
	isActive, deactivated := d.tracker.Observe(m.Device, m.Epoch)
	for _, e := range deactivated {
		if _, ok := d.verifiers[e]; ok {
			delete(d.verifiers, e)
			delete(d.fed, e)
			d.stats.VerifiersStopped++
			d.m.stopped.Inc()
			d.m.verifiersLive.Add(-1)
			delete(d.born, e)
		}
	}
	if !isActive {
		// A newer epoch from this device already exists elsewhere; the
		// updates stay queued for future verifiers' snapshots.
		return nil, nil
	}
	v, events, err := d.ensureVerifier(m.Epoch)
	if err != nil {
		return nil, err
	}
	more, err := d.feedDevice(m.Epoch, v, m.Device)
	if err != nil {
		return nil, err
	}
	events = append(events, more...)
	d.m.events.Add(int64(len(events)))
	return events, nil
}

// ensureVerifier creates (and back-fills) the verifier for an active
// epoch: every device's queued update history is replayed so the verifier
// holds the freshest known FIB snapshot, and devices whose latest epoch
// matches are marked synchronized. Detection results produced during the
// back-fill are returned.
func (d *Dispatcher) ensureVerifier(e Epoch) (*Verifier, []TaggedEvent, error) {
	if v, ok := d.verifiers[e]; ok {
		return v, nil, nil
	}
	v := d.factory(e)
	d.verifiers[e] = v
	d.fed[e] = make(map[fib.DeviceID]int)
	d.stats.VerifiersCreated++
	d.m.created.Inc()
	d.m.verifiersLive.Add(1)
	if d.born != nil {
		d.born[e] = time.Now()
	}
	var events []TaggedEvent
	for dev := range d.queues {
		evs, err := d.feedDevice(e, v, dev)
		if err != nil {
			return nil, nil, err
		}
		events = append(events, evs...)
	}
	return v, events, nil
}

// feedDevice replays the device's unconsumed queue prefix into the
// verifier and synchronizes the device if its latest epoch matches.
func (d *Dispatcher) feedDevice(e Epoch, v *Verifier, dev fib.DeviceID) ([]TaggedEvent, error) {
	q := d.queues[dev]
	start := d.fed[e][dev]
	if start >= len(q) {
		return nil, nil
	}
	if v.synced[dev] {
		return nil, fmt.Errorf("ce2d: device %d sent more updates after synchronizing epoch %s: %w", dev, e, ErrBadEpoch)
	}
	for _, m := range q[start:] {
		if err := v.ApplyUpdates(dev, m.Updates); err != nil {
			return nil, err
		}
	}
	d.fed[e][dev] = len(q)
	last, _ := d.tracker.Last(dev)
	if last != e {
		return nil, nil
	}
	events, err := v.MarkSynchronized(dev)
	if err != nil {
		return nil, err
	}
	if d.born != nil {
		if t0, ok := d.born[e]; ok {
			d.m.stragglerWaitNs.Observe(time.Since(t0))
		}
		d.m.devicesSynced.Set(int64(v.SynchronizedCount()))
	}
	out := make([]TaggedEvent, 0, len(events))
	for _, ev := range events {
		out = append(out, TaggedEvent{Epoch: e, Event: ev})
	}
	return out, nil
}

package ce2d

import (
	"fmt"
	"sort"

	"repro/internal/fib"
	"repro/internal/imt"
)

// This file is the CE2D half of the checkpoint/restore subsystem: it
// exports the dispatcher's epoch bookkeeping and queued-but-unconsumed
// updates, and rebuilds a verifier whose detection state is identical to
// the one that was checkpointed.
//
// Only the most-converged live verifier (Dispatcher.Current) is
// serialized. Its detection state is NOT dumped structurally — class
// refinement is fully deterministic given the same engine (hash-consed
// refs), the same tables, and the same device synchronization order, so
// a restore replays SynchronizeTable over the recorded order instead.
// Other epochs' verifiers are dropped; the dispatcher rebuilds them from
// the retained queues the next time their epoch goes active, exactly as
// it would for a late-created verifier in live operation.

// SyncOrder returns the devices in the order they synchronized with this
// verifier. The returned slice is a copy.
func (v *Verifier) SyncOrder() []fib.DeviceID {
	return append([]fib.DeviceID(nil), v.syncOrder...)
}

// RestoreVerifier rebuilds a verifier from checkpointed state: a fresh
// detection pipeline over cfg, the restored Fast IMT transformer, and
// the recorded synchronization order. Synchronization is replayed
// device by device against the restored tables — detection events the
// original already reported are discarded (the serving plane restores
// published verdicts separately).
func RestoreVerifier(cfg Config, trans *imt.Transformer, syncOrder []fib.DeviceID) (*Verifier, error) {
	if trans == nil {
		return nil, fmt.Errorf("ce2d: restore: nil transformer")
	}
	v := NewVerifier(cfg)
	v.transform = trans
	seen := make(map[fib.DeviceID]bool, len(syncOrder))
	for _, dev := range syncOrder {
		if seen[dev] {
			return nil, fmt.Errorf("ce2d: restore: device %d appears twice in sync order", dev)
		}
		seen[dev] = true
		if _, err := v.SynchronizeTable(dev, trans.Table(dev)); err != nil {
			return nil, fmt.Errorf("ce2d: restore: resync device %d: %w", dev, err)
		}
	}
	v.events = nil
	return v, nil
}

// TrackerState is the serializable form of the epoch tracker.
type TrackerState struct {
	Last     map[fib.DeviceID]Epoch
	Active   []Epoch
	Inactive []Epoch
}

// Export captures the tracker's happens-before bookkeeping.
func (t *Tracker) Export() TrackerState {
	st := TrackerState{Last: make(map[fib.DeviceID]Epoch, len(t.last))}
	for dev, e := range t.last {
		st.Last[dev] = e
	}
	for e := range t.active {
		st.Active = append(st.Active, e)
	}
	for e := range t.inactive {
		st.Inactive = append(st.Inactive, e)
	}
	sort.Slice(st.Active, func(i, j int) bool { return st.Active[i] < st.Active[j] })
	sort.Slice(st.Inactive, func(i, j int) bool { return st.Inactive[i] < st.Inactive[j] })
	return st
}

// RestoreTracker rebuilds a tracker from exported state.
func RestoreTracker(st TrackerState) *Tracker {
	t := NewTracker()
	for dev, e := range st.Last {
		t.last[dev] = e
	}
	for _, e := range st.Active {
		t.active[e] = true
	}
	for _, e := range st.Inactive {
		t.inactive[e] = true
	}
	return t
}

// DispatcherState is the serializable dispatcher state for one subspace:
// the epoch tracker, the retained update queues (compacted — see
// ExportState), and the consumed-prefix markers of the one serialized
// verifier.
type DispatcherState struct {
	Tracker TrackerState
	// Epoch identifies the serialized (most-converged) verifier.
	Epoch Epoch
	// Queues holds the per-device retained messages after compaction.
	Queues map[fib.DeviceID][]Msg
	// Fed maps device → consumed prefix length of the serialized
	// verifier over the compacted queues.
	Fed map[fib.DeviceID]int
}

// ExportState captures the dispatcher for a checkpoint. The serialized
// verifier's consumed queue prefixes are compacted away: a device's
// consumed prefix is replaced by one synthetic baseline message whose
// inserts rebuild the verifier's current table for that device. This is
// behavior-preserving for every future verifier because feedDevice
// ignores message epoch tags during replay and only observes
// synchronization at the end of a device's full queue — replaying
// [baseline, suffix...] from an empty table reaches the same states as
// replaying the original full history.
//
// ok is false when no verifier is live (nothing fed yet); the caller
// then skips the subspace exactly like Snapshot does.
func (d *Dispatcher) ExportState() (st DispatcherState, ok bool) {
	e, v, ok := d.Current()
	if !ok {
		return DispatcherState{}, false
	}
	st = DispatcherState{
		Tracker: d.tracker.Export(),
		Epoch:   e,
		Queues:  make(map[fib.DeviceID][]Msg, len(d.queues)),
		Fed:     make(map[fib.DeviceID]int, len(d.fed[e])),
	}
	for dev, q := range d.queues {
		m := d.fed[e][dev]
		if m <= 0 {
			st.Queues[dev] = append([]Msg(nil), q...)
			continue
		}
		rules := v.Transformer().Table(dev).Rules()
		base := Msg{Device: dev, Epoch: e, Updates: make([]fib.Update, 0, len(rules))}
		for _, r := range rules {
			base.Updates = append(base.Updates, fib.Update{Op: fib.Insert, Rule: r})
		}
		nq := make([]Msg, 0, 1+len(q)-m)
		nq = append(nq, base)
		nq = append(nq, q[m:]...)
		st.Queues[dev] = nq
		st.Fed[dev] = 1
	}
	return st, true
}

// RestoreDispatcher rebuilds a dispatcher around a restored verifier.
// factory serves future epochs exactly as in NewDispatcher; v (the
// verifier RestoreVerifier rebuilt) is installed under st.Epoch with the
// exported consumed-prefix markers. The exported epoch must be active in
// the exported tracker and every fed marker must lie within its queue —
// violations indicate a corrupt checkpoint and fail the restore.
func RestoreDispatcher(factory func(Epoch) *Verifier, st DispatcherState, v *Verifier) (*Dispatcher, error) {
	d := NewDispatcher(factory)
	d.tracker = RestoreTracker(st.Tracker)
	if !d.tracker.Active(st.Epoch) {
		return nil, fmt.Errorf("ce2d: restore: serialized epoch %s not active in tracker", st.Epoch)
	}
	for dev, q := range st.Queues {
		d.queues[dev] = append([]Msg(nil), q...)
		d.queued += len(q)
	}
	fed := make(map[fib.DeviceID]int, len(st.Fed))
	for dev, n := range st.Fed {
		if n < 0 || n > len(d.queues[dev]) {
			return nil, fmt.Errorf("ce2d: restore: fed marker %d for device %d exceeds queue length %d", n, dev, len(d.queues[dev]))
		}
		fed[dev] = n
	}
	if v == nil {
		return nil, fmt.Errorf("ce2d: restore: nil verifier for epoch %s", st.Epoch)
	}
	d.verifiers[st.Epoch] = v
	d.fed[st.Epoch] = fed
	d.stats.VerifiersCreated++
	d.m.verifiersLive.Add(1)
	return d, nil
}

package ce2d

import (
	"testing"

	"repro/internal/reach"
	"repro/internal/topo"
)

// figure5 builds the paper's Figure 5 graph: A—B, A—C, A—X, B—C(?), C—X,
// B connects A and C per the drawing: edges A-B, B-C? The figure shows
// A,B,C triangle-ish with X attached to A and C.
func figure5() (*topo.Graph, map[string]topo.NodeID) {
	g := topo.New()
	ids := map[string]topo.NodeID{}
	for _, n := range []string{"A", "B", "C", "X"} {
		ids[n] = g.AddNode(n, topo.RoleSwitch, -1)
	}
	g.AddLink(ids["A"], ids["B"])
	g.AddLink(ids["A"], ids["C"])
	g.AddLink(ids["A"], ids["X"])
	g.AddLink(ids["B"], ids["C"])
	g.AddLink(ids["C"], ids["X"])
	return g, ids
}

func fwd(to topo.NodeID) reach.SyncState {
	return reach.SyncState{NextHops: []topo.NodeID{to}}
}

func TestDeterministicLoop(t *testing.T) {
	g, ids := figure5()
	ld := NewLoopDetector(g, nil)
	if r, err := ld.Synchronize(ids["A"], fwd(ids["B"])); err != nil || r == LoopFound {
		t.Fatalf("A: %v %v", r, err)
	}
	// B → A closes a synchronized 2-cycle.
	r, err := ld.Synchronize(ids["B"], fwd(ids["A"]))
	if err != nil {
		t.Fatal(err)
	}
	if r != LoopFound {
		t.Fatalf("sync 2-cycle: %v, want loop", r)
	}
}

// TestFigure5a: C and X unsynchronized form a hyper node; result must be
// undetermined because the packet may exit via C&X or loop back.
func TestFigure5a(t *testing.T) {
	g, ids := figure5()
	// Only C has an external port (the "out" arrow in the figure).
	ld := NewLoopDetector(g, func(n topo.NodeID) bool { return n == ids["C"] })
	if _, err := ld.Synchronize(ids["B"], fwd(ids["A"])); err != nil {
		t.Fatal(err)
	}
	r, err := ld.Synchronize(ids["A"], fwd(ids["C"]))
	if err != nil {
		t.Fatal(err)
	}
	if r != LoopUnknown {
		t.Fatalf("Figure 5(a): %v, want unknown", r)
	}
}

// TestFigure5b: with C also synchronized (C→B), X's potential next hops
// (A or C) both close a cycle, so a loop is certain unless X drops:
// early-detected even though X never synchronizes.
func TestFigure5b(t *testing.T) {
	g, ids := figure5()
	ld := NewLoopDetector(g, func(n topo.NodeID) bool { return n == ids["C"] })
	if _, err := ld.Synchronize(ids["B"], fwd(ids["A"])); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Synchronize(ids["C"], fwd(ids["B"])); err != nil {
		t.Fatal(err)
	}
	r, err := ld.Synchronize(ids["A"], fwd(ids["X"]))
	if err != nil {
		t.Fatal(err)
	}
	if r != LoopFound {
		t.Fatalf("Figure 5(b): %v, want loop (certain unless X drops)", r)
	}
}

func TestLoopFreeRequiresFullSync(t *testing.T) {
	g, ids := figure5()
	ld := NewLoopDetector(g, nil)
	if r, _ := ld.Synchronize(ids["A"], fwd(ids["X"])); r == LoopFree {
		t.Fatal("cannot be loop-free with unsynchronized devices")
	}
	if _, err := ld.Synchronize(ids["B"], fwd(ids["A"])); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Synchronize(ids["C"], fwd(ids["A"])); err != nil {
		t.Fatal(err)
	}
	// X delivers: everything synchronized, no cycle.
	r, err := ld.Synchronize(ids["X"], reach.SyncState{Delivers: true})
	if err != nil {
		t.Fatal(err)
	}
	if r != LoopFree {
		t.Fatalf("fully synchronized acyclic plane: %v, want loop-free", r)
	}
	if ld.NumSynchronized() != 4 {
		t.Fatal("NumSynchronized wrong")
	}
}

func TestLoopFreeGlobalConfirmation(t *testing.T) {
	// A disjoint synchronized cycle must prevent a LoopFree verdict even
	// when the last walk checked is clean. (The cycle is reported the
	// moment it closes, and CheckAll re-finds it.)
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	b := g.AddNode("b", topo.RoleSwitch, -1)
	c := g.AddNode("c", topo.RoleSwitch, -1)
	g.AddLink(a, b)
	g.AddLink(b, c) // not used by forwarding
	ld := NewLoopDetector(g, nil)
	if _, err := ld.Synchronize(a, fwd(b)); err != nil {
		t.Fatal(err)
	}
	r, err := ld.Synchronize(b, fwd(a))
	if err != nil {
		t.Fatal(err)
	}
	if r != LoopFound {
		t.Fatalf("2-cycle: %v", r)
	}
	// c syncs as delivering — its own walk is clean, but the class
	// still has the a↔b loop.
	r, err = ld.Synchronize(c, reach.SyncState{Delivers: true})
	if err != nil {
		t.Fatal(err)
	}
	if r != LoopFound {
		t.Fatalf("after full sync: %v, want loop (a↔b persists)", r)
	}
}

func TestIsolatedUnsyncNodeNoFalseLoop(t *testing.T) {
	// a → b(delivers); x isolated and unsynchronized: no loop possible
	// through a size-1 component with no synchronized neighbors.
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	b := g.AddNode("b", topo.RoleSwitch, -1)
	g.AddNode("x", topo.RoleSwitch, -1)
	g.AddLink(a, b)
	ld := NewLoopDetector(g, nil)
	if _, err := ld.Synchronize(a, fwd(b)); err != nil {
		t.Fatal(err)
	}
	r, err := ld.Synchronize(b, reach.SyncState{Delivers: true})
	if err != nil {
		t.Fatal(err)
	}
	if r == LoopFound {
		t.Fatalf("no loop exists, got %v", r)
	}
}

func TestResyncConflict(t *testing.T) {
	g, ids := figure5()
	ld := NewLoopDetector(g, nil)
	if _, err := ld.Synchronize(ids["A"], fwd(ids["B"])); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Synchronize(ids["A"], fwd(ids["B"])); err != nil {
		t.Fatal("identical re-sync must be accepted")
	}
	if _, err := ld.Synchronize(ids["A"], fwd(ids["C"])); err == nil {
		t.Fatal("conflicting re-sync must error")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, ids := figure5()
	ld := NewLoopDetector(g, nil)
	if _, err := ld.Synchronize(ids["A"], fwd(ids["B"])); err != nil {
		t.Fatal(err)
	}
	c := ld.Clone()
	if _, err := c.Synchronize(ids["B"], fwd(ids["A"])); err != nil {
		t.Fatal(err)
	}
	if ld.NumSynchronized() != 1 || c.NumSynchronized() != 2 {
		t.Fatal("Clone shares sync state")
	}
}

func TestHyperNodePairCanLoop(t *testing.T) {
	// Two adjacent unsynchronized nodes form a component that can always
	// loop internally: a synchronized node forwarding into it must stay
	// unknown (not no-loop).
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	x := g.AddNode("x", topo.RoleSwitch, -1)
	y := g.AddNode("y", topo.RoleSwitch, -1)
	g.AddLink(a, x)
	g.AddLink(x, y)
	ld := NewLoopDetector(g, nil)
	r, err := ld.Synchronize(a, fwd(x))
	if err != nil {
		t.Fatal(err)
	}
	if r != LoopUnknown {
		t.Fatalf("forwarding into a loopable hyper node: %v, want unknown", r)
	}
}

//go:build !flashcheck

package ce2d

import "repro/internal/fib"

// Without the flashcheck build tag the invariant layer compiles to
// nothing: this empty method is inlined away and fcAbandoned stays nil.
// The checking twin lives in flashcheck_on.go.
func (d *Dispatcher) checkEpochMonotonic(dev fib.DeviceID, tag Epoch) {}

package ce2d

import (
	"testing"

	"repro/internal/reach"
	"repro/internal/spec"
	"repro/internal/topo"
)

// diamond builds s — {m1, m2} — {d1, d2}: two branch points to two
// possible destinations.
func diamond() (*topo.Graph, map[string]topo.NodeID) {
	g := topo.New()
	ids := map[string]topo.NodeID{}
	for _, n := range []string{"s", "m1", "m2", "d1", "d2"} {
		ids[n] = g.AddNode(n, topo.RoleSwitch, -1)
	}
	g.AddLink(ids["s"], ids["m1"])
	g.AddLink(ids["s"], ids["m2"])
	g.AddLink(ids["m1"], ids["d1"])
	g.AddLink(ids["m2"], ids["d2"])
	return g, ids
}

func TestAnycastExactlyOne(t *testing.T) {
	g, ids := diamond()
	expr := spec.MustParse("s .* >")
	m := NewAnycast(g, expr, []topo.NodeID{ids["s"]}, []topo.NodeID{ids["d1"], ids["d2"]}, nil)
	if v := m.Verdict(); v != reach.Unknown {
		t.Fatalf("initial: %v", v)
	}
	// s → m1 only: the d2 branch dies.
	if err := m.Synchronize(ids["s"], fwd(ids["m1"])); err != nil {
		t.Fatal(err)
	}
	if v := m.Verdict(); v != reach.Unknown {
		t.Fatalf("after s: %v", v)
	}
	if err := m.Synchronize(ids["m1"], fwd(ids["d1"])); err != nil {
		t.Fatal(err)
	}
	if err := m.Synchronize(ids["d1"], reach.SyncState{Delivers: true}); err != nil {
		t.Fatal(err)
	}
	// d1 satisfied, d2 unsatisfied (s bypasses m2) → anycast satisfied.
	if v := m.Verdict(); v != reach.Satisfied {
		t.Fatalf("anycast: %v, want satisfied", v)
	}
}

func TestAnycastBothReachableIsError(t *testing.T) {
	// s with ECMP to both branches delivering at both dests: anycast
	// violated (packet reaches two groups).
	g, ids := diamond()
	expr := spec.MustParse("s .* >")
	m := NewAnycast(g, expr, []topo.NodeID{ids["s"]}, []topo.NodeID{ids["d1"], ids["d2"]}, nil)
	sync := func(dev topo.NodeID, st reach.SyncState) {
		t.Helper()
		if err := m.Synchronize(dev, st); err != nil {
			t.Fatal(err)
		}
	}
	sync(ids["s"], reach.SyncState{NextHops: []topo.NodeID{ids["m1"], ids["m2"]}})
	sync(ids["m1"], fwd(ids["d1"]))
	sync(ids["m2"], fwd(ids["d2"]))
	sync(ids["d1"], reach.SyncState{Delivers: true})
	sync(ids["d2"], reach.SyncState{Delivers: true})
	if v := m.Verdict(); v != reach.Unsatisfied {
		t.Fatalf("dual delivery: %v, want unsatisfied", v)
	}
}

func TestAnycastNoneReachable(t *testing.T) {
	g, ids := diamond()
	expr := spec.MustParse("s .* >")
	m := NewAnycast(g, expr, []topo.NodeID{ids["s"]}, []topo.NodeID{ids["d1"], ids["d2"]}, nil)
	if err := m.Synchronize(ids["s"], reach.SyncState{}); err != nil { // drop
		t.Fatal(err)
	}
	if v := m.Verdict(); v != reach.Unsatisfied {
		t.Fatalf("drop at source: %v, want unsatisfied (early)", v)
	}
}

func TestMulticastAllRequired(t *testing.T) {
	g, ids := diamond()
	expr := spec.MustParse("s .* >")
	m := NewMulticast(g, expr, []topo.NodeID{ids["s"]}, []topo.NodeID{ids["d1"], ids["d2"]}, nil)
	sync := func(dev topo.NodeID, st reach.SyncState) {
		t.Helper()
		if err := m.Synchronize(dev, st); err != nil {
			t.Fatal(err)
		}
	}
	// Multicast replication at s; both branches deliver.
	sync(ids["s"], reach.SyncState{NextHops: []topo.NodeID{ids["m1"], ids["m2"]}})
	sync(ids["m1"], fwd(ids["d1"]))
	if v := m.Verdict(); v != reach.Unknown {
		t.Fatalf("partial: %v", v)
	}
	sync(ids["m2"], fwd(ids["d2"]))
	sync(ids["d1"], reach.SyncState{Delivers: true})
	sync(ids["d2"], reach.SyncState{Delivers: true})
	if v := m.Verdict(); v != reach.Satisfied {
		t.Fatalf("full tree: %v, want satisfied", v)
	}
}

func TestMulticastEarlyUnsatisfied(t *testing.T) {
	g, ids := diamond()
	expr := spec.MustParse("s .* >")
	m := NewMulticast(g, expr, []topo.NodeID{ids["s"]}, []topo.NodeID{ids["d1"], ids["d2"]}, nil)
	// s forwards only toward m1: d2 unreachable, multicast already dead.
	if err := m.Synchronize(ids["s"], fwd(ids["m1"])); err != nil {
		t.Fatal(err)
	}
	if v := m.Verdict(); v != reach.Unsatisfied {
		t.Fatalf("single branch: %v, want unsatisfied (early)", v)
	}
}

func TestCoverageAllShortestPaths(t *testing.T) {
	// The Azure-style intent: "all redundant shortest paths should be
	// available." Diamond s—{m1,m2}—t.
	g := topo.New()
	s := g.AddNode("s", topo.RoleSwitch, -1)
	m1 := g.AddNode("m1", topo.RoleSwitch, -1)
	m2 := g.AddNode("m2", topo.RoleSwitch, -1)
	d := g.AddNode("t", topo.RoleSwitch, -1)
	g.AddLink(s, m1)
	g.AddLink(s, m2)
	g.AddLink(m1, d)
	g.AddLink(m2, d)
	// Directed successor set = the shortest-path DAG toward t.
	dag := map[topo.NodeID][]topo.NodeID{s: {m1, m2}, m1: {d}, m2: {d}}
	succ := func(n topo.NodeID) []topo.NodeID { return dag[n] }
	expr := spec.MustParse("s . t")

	c := NewCoverage(g, expr, []topo.NodeID{s}, func(n topo.NodeID) bool { return n == d }, succ)
	if got := len(c.Required(s)); got != 2 {
		t.Fatalf("s must cover %d successors, want 2", got)
	}
	// s installs both ECMP branches: fine.
	if err := c.Synchronize(s, reach.SyncState{NextHops: []topo.NodeID{m1, m2}}); err != nil {
		t.Fatal(err)
	}
	if v := c.Verdict(); v != reach.Unknown {
		t.Fatalf("after s: %v", v)
	}
	if err := c.Synchronize(m1, fwd(d)); err != nil {
		t.Fatal(err)
	}
	if err := c.Synchronize(m2, fwd(d)); err != nil {
		t.Fatal(err)
	}
	if v := c.Verdict(); v != reach.Satisfied {
		t.Fatalf("all covered: %v, want satisfied", v)
	}

	// A second instance where s drops one branch: early unsatisfied.
	c2 := NewCoverage(g, expr, []topo.NodeID{s}, func(n topo.NodeID) bool { return n == d }, succ)
	if err := c2.Synchronize(s, fwd(m1)); err != nil {
		t.Fatal(err)
	}
	if v := c2.Verdict(); v != reach.Unsatisfied {
		t.Fatalf("missing redundant path: %v, want unsatisfied (early)", v)
	}
}

func TestVectorTrackerConvergence(t *testing.T) {
	vt := NewVectorTracker()
	vt.Start("withdraw-1", 2) // root sends 2 announcements

	// Device 1 consumes one announcement, emits 1 further.
	conv, err := vt.Observe(CausalMsg{Device: 1, Event: "withdraw-1", Consumed: 1, Emitted: 1})
	if err != nil || conv {
		t.Fatalf("conv=%v err=%v", conv, err)
	}
	// Device 2 consumes one, emits none.
	conv, err = vt.Observe(CausalMsg{Device: 2, Event: "withdraw-1", Consumed: 1, Emitted: 0})
	if err != nil || conv {
		t.Fatalf("conv=%v err=%v", conv, err)
	}
	// Device 3 consumes the last in-flight announcement, emits none:
	// converged.
	conv, err = vt.Observe(CausalMsg{Device: 3, Event: "withdraw-1", Consumed: 1, Emitted: 0})
	if err != nil || !conv {
		t.Fatalf("conv=%v err=%v, want converged", conv, err)
	}
	if !vt.Converged("withdraw-1") {
		t.Fatal("Converged() disagrees")
	}
	if vt.Participants("withdraw-1") != 3 {
		t.Fatalf("participants = %d", vt.Participants("withdraw-1"))
	}
}

func TestVectorTrackerErrors(t *testing.T) {
	vt := NewVectorTracker()
	vt.Start("e", 1)
	if _, err := vt.Observe(CausalMsg{Device: 1, Event: "zzz", Consumed: 1}); err == nil {
		t.Error("unknown event accepted")
	}
	if _, err := vt.Observe(CausalMsg{Device: 1, Event: "e", Consumed: 0}); err == nil {
		t.Error("zero consumption accepted")
	}
	if _, err := vt.Observe(CausalMsg{Device: 1, Event: "e", Consumed: 5}); err == nil {
		t.Error("over-consumption accepted")
	}
	for _, f := range []func(){
		func() { vt.Start("e", 1) },
		func() { vt.Start("f", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if vt.Converged("unknown") {
		t.Error("unknown event reported converged")
	}
}

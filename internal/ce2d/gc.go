package ce2d

import "repro/internal/bdd"

// GC root enumeration and remapping for the engine's mark-and-sweep
// collection (see internal/bdd). A subspace worker owns one engine
// shared by every verifier epoch of the subspace, so the dispatcher —
// which holds the queued messages and the live verifiers — is the root
// set's entry point; Verifier exposes its own pair for callers that
// drive a verifier directly.

// Roots yields every BDD ref the verifier holds: the subspace universe,
// the Fast IMT transformer state (EC model + device tables), each
// check's packet space, every class predicate keyed in the detection
// maps, and the classes of undrained events.
func (v *Verifier) Roots(yield func(bdd.Ref)) {
	yield(v.cfg.Universe)
	v.transform.Roots(yield)
	for _, cs := range v.checks {
		yield(cs.check.Space)
		for p := range cs.vgraphs {
			yield(p)
		}
		for p := range cs.loops {
			yield(p)
		}
		for p := range cs.multi {
			yield(p)
		}
		for p := range cs.cover {
			yield(p)
		}
		for p := range cs.settled {
			yield(p)
		}
	}
	for i := range v.events {
		yield(v.events[i].Class)
	}
}

// RemapRefs rewrites every held ref through a GC remap. Ref-keyed class
// maps are rebuilt: a Remap is injective on live refs, so rebuilding
// cannot merge classes.
func (v *Verifier) RemapRefs(m bdd.Remap) {
	v.cfg.Universe = m.Apply(v.cfg.Universe)
	v.transform.RemapRefs(m)
	for _, cs := range v.checks {
		cs.check.Space = m.Apply(cs.check.Space)
		cs.vgraphs = remapKeys(m, cs.vgraphs)
		cs.loops = remapKeys(m, cs.loops)
		cs.multi = remapKeys(m, cs.multi)
		cs.cover = remapKeys(m, cs.cover)
		cs.settled = remapKeys(m, cs.settled)
	}
	for i := range v.events {
		v.events[i].Class = m.Apply(v.events[i].Class)
	}
}

// remapKeys rebuilds a class-predicate-keyed map under a GC remap.
func remapKeys[V any](m bdd.Remap, in map[bdd.Ref]V) map[bdd.Ref]V {
	if in == nil {
		return nil
	}
	out := make(map[bdd.Ref]V, len(in))
	for p, v := range in {
		out[m.Apply(p)] = v
	}
	return out
}

// Roots yields every BDD ref the dispatcher holds: the Match refs of
// retained (replayable) device queues and the full root set of each
// live per-epoch verifier.
func (d *Dispatcher) Roots(yield func(bdd.Ref)) {
	for _, q := range d.queues {
		for _, msg := range q {
			for i := range msg.Updates {
				yield(msg.Updates[i].Rule.Match)
			}
		}
	}
	for _, v := range d.verifiers {
		v.Roots(yield)
	}
}

// RemapRefs rewrites all held refs through a GC remap. Queue storage is
// never aliased by verifier tables (feeding copies updates through the
// cancel/merge pipeline), so queues and verifiers remap independently.
func (d *Dispatcher) RemapRefs(m bdd.Remap) {
	for _, q := range d.queues {
		for _, msg := range q {
			for i := range msg.Updates {
				msg.Updates[i].Rule.Match = m.Apply(msg.Updates[i].Rule.Match)
			}
		}
	}
	for _, v := range d.verifiers {
		v.RemapRefs(m)
	}
}

package ce2d

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/imt"
	"repro/internal/pat"
	"repro/internal/pred"
	"repro/internal/reach"
	"repro/internal/spec"
	"repro/internal/topo"
)

// CheckKind discriminates the verification checks a verifier runs.
type CheckKind uint8

// Check kinds.
const (
	// CheckReach verifies a path-regular-expression requirement.
	CheckReach CheckKind = iota
	// CheckLoopFree verifies all-pair loop freedom.
	CheckLoopFree
	// CheckAnycast verifies "exactly one of Dests reachable" (App. D.2).
	CheckAnycast
	// CheckMulticast verifies "all of Dests reachable" (App. D.2).
	CheckMulticast
	// CheckCoverage verifies "all matching paths exist" (App. D.2; also
	// selected automatically for a CheckReach whose expression is
	// "cover P").
	CheckCoverage
)

// Check is one verification requirement bound to a packet space.
//
//flashvet:allow bddref — Space is expressed in the engine of the Verifier the check is registered with (Config.Engine)
//flashvet:allow gcroot — registered checks' Space refs are enumerated by the owning Verifier's Roots (per-check classState)
type Check struct {
	Name    string
	Kind    CheckKind
	Space   bdd.Ref                // packet space H (bdd.True = everything)
	Expr    *spec.Expr             // path checks
	Sources []topo.NodeID          // path checks
	IsDest  func(topo.NodeID) bool // CheckReach/CheckCoverage; may be nil
	Dests   []topo.NodeID          // CheckAnycast/CheckMulticast
	CanExit func(topo.NodeID) bool // CheckLoopFree only; may be nil (= any)
}

// Event is a deterministic early-detection result for one check on one
// equivalence class of the packet space.
//
//flashvet:allow bddref — Class is minted by the emitting Verifier's engine; consumers treat it as opaque
//flashvet:allow gcroot — buffered events' Class refs are enumerated by the emitting Verifier's Roots (v.events)
type Event struct {
	Check string
	Class bdd.Ref // the class of headers the result applies to
	// Exactly one of the two results is meaningful, per the check kind.
	Verdict reach.Verdict
	Loop    LoopResult
}

// Config configures an epoch verifier.
//
//flashvet:allow gcroot — Universe is enumerated by the owning Verifier's Roots (cfg.Universe)
type Config struct {
	Topo   *topo.Graph
	Engine pred.Engine
	// Universe restricts the verifier to a subspace (bdd.True for all).
	Universe bdd.Ref
	Checks   []Check
	// ActionMap translates a FIB action into CE2D forwarding behavior.
	// Nil uses DefaultActionMap.
	ActionMap func(fib.Action) reach.SyncState
	// Succ optionally restricts the potential-path successor sets of the
	// verification graphs (see reach.NewVGraphEdges). Nil uses the
	// topology's neighbor sets.
	Succ func(topo.NodeID) []topo.NodeID
}

// DefaultActionMap treats Forward(d) as a hop to device d when d is a
// topology node and as local delivery otherwise (host/external port), and
// Drop/None as dropping.
func DefaultActionMap(g *topo.Graph) func(fib.Action) reach.SyncState {
	n := topo.NodeID(g.N())
	return func(a fib.Action) reach.SyncState {
		if d, ok := a.NextHop(); ok {
			if d < n {
				return reach.SyncState{NextHops: []topo.NodeID{d}}
			}
			return reach.SyncState{Delivers: true}
		}
		return reach.SyncState{}
	}
}

// classState tracks one check over one refining partition of its packet
// space (the ecTable of Algorithm 2).
//
//flashvet:allow bddref — all class predicates live in the owning Verifier's engine (v.eng)
//flashvet:allow gcroot — every class map is enumerated by the owning Verifier's Roots
type classState struct {
	check Check
	// classes maps class predicate → per-class detection state. Class
	// predicates partition check.Space ∧ universe.
	vgraphs map[bdd.Ref]*reach.VGraph // CheckReach
	loops   map[bdd.Ref]*LoopDetector // CheckLoopFree
	multi   map[bdd.Ref]*MultiPath    // CheckAnycast/CheckMulticast
	cover   map[bdd.Ref]*Coverage     // CheckCoverage
	settled map[bdd.Ref]bool          // classes with a deterministic result
}

// Verifier is one subspace/epoch verifier: a Fast IMT model manager plus
// CE2D detection state, fed device-by-device as FIB updates arrive
// tagged with this verifier's epoch.
type Verifier struct {
	cfg       Config
	engine    pred.Engine
	store     *pat.Store
	transform *imt.Transformer
	actionMap func(fib.Action) reach.SyncState

	checks []*classState
	synced map[fib.DeviceID]bool
	// syncOrder records the devices in the order they synchronized.
	// Detection-state refinement is order-sensitive, so a checkpoint
	// restore must replay synchronization in exactly this order to
	// rebuild identical per-class state (see RestoreVerifier).
	syncOrder []fib.DeviceID
	events    []Event
}

// Rebind points the verifier (and its Fast IMT transformer) at a
// different predicate engine. Hybrid cutover calls it after every held
// Ref has been rewritten through the conversion remap (RemapRefs): the
// refs are positions in the new engine, so the verifier must stop
// consulting the old one. Caller holds the owning worker's mutex.
func (v *Verifier) Rebind(e pred.Engine) {
	v.engine = e
	v.cfg.Engine = e
	v.transform.E = e
}

// NewVerifier creates a verifier for one epoch over the given subspace.
func NewVerifier(cfg Config) *Verifier {
	if cfg.Universe == bdd.False {
		cfg.Universe = bdd.True
	}
	e := cfg.Engine
	v := &Verifier{
		cfg:       cfg,
		engine:    e,
		store:     pat.NewStore(),
		transform: imt.NewTransformer(e, pat.NewStore(), cfg.Universe),
		synced:    make(map[fib.DeviceID]bool),
	}
	if cfg.ActionMap != nil {
		v.actionMap = cfg.ActionMap
	} else {
		v.actionMap = DefaultActionMap(cfg.Topo)
	}
	for _, c := range cfg.Checks {
		// "cover P" reachability checks are coverage requirements.
		if c.Kind == CheckReach && c.Expr != nil {
			if inner, ok := c.Expr.IsCover(); ok {
				c.Kind = CheckCoverage
				c.Expr = inner
			}
		}
		space := e.And(c.Space, cfg.Universe)
		cs := &classState{
			check:   c,
			settled: make(map[bdd.Ref]bool),
		}
		succ := cfg.Succ
		if succ == nil {
			succ = cfg.Topo.Neighbors
		}
		switch c.Kind {
		case CheckReach:
			cs.vgraphs = map[bdd.Ref]*reach.VGraph{space: v.newVGraph(c)}
		case CheckLoopFree:
			cs.loops = map[bdd.Ref]*LoopDetector{space: NewLoopDetector(cfg.Topo, c.CanExit)}
		case CheckAnycast:
			cs.multi = map[bdd.Ref]*MultiPath{space: NewAnycast(cfg.Topo, c.Expr, c.Sources, c.Dests, succ)}
		case CheckMulticast:
			cs.multi = map[bdd.Ref]*MultiPath{space: NewMulticast(cfg.Topo, c.Expr, c.Sources, c.Dests, succ)}
		case CheckCoverage:
			cs.cover = map[bdd.Ref]*Coverage{space: NewCoverage(cfg.Topo, c.Expr, c.Sources, c.IsDest, succ)}
		}
		v.checks = append(v.checks, cs)
	}
	// Each classState copied its Check above; drop the caller's slice so
	// the verifier holds no alias into it. Otherwise RemapRefs would
	// rewrite check Spaces the caller also remaps (a double Apply, which
	// panics on the second pass because the first result is post-GC).
	v.cfg.Checks = nil
	return v
}

func (v *Verifier) newVGraph(c Check) *reach.VGraph {
	succ := v.cfg.Succ
	if succ == nil {
		succ = v.cfg.Topo.Neighbors
	}
	return reach.NewVGraphEdges(v.cfg.Topo, c.Expr, c.Sources, c.IsDest, succ)
}

// Transformer exposes the model manager (Fast IMT state) of the verifier.
func (v *Verifier) Transformer() *imt.Transformer { return v.transform }

// Events drains the deterministic results produced so far.
func (v *Verifier) Events() []Event {
	out := v.events
	v.events = nil
	return out
}

// SynchronizedCount reports how many devices have synchronized.
func (v *Verifier) SynchronizedCount() int { return len(v.synced) }

// ApplyUpdates applies a device's FIB updates to the model (the device is
// not yet considered synchronized; call MarkSynchronized when its FIB for
// this epoch is complete).
func (v *Verifier) ApplyUpdates(dev fib.DeviceID, updates []fib.Update) error {
	return v.transform.ApplyBlock([]fib.Block{{Device: dev, Updates: updates}})
}

// MarkSynchronized declares that the device's FIB is complete for this
// verifier's epoch and runs consistent early detection, returning any new
// deterministic results.
func (v *Verifier) MarkSynchronized(dev fib.DeviceID) ([]Event, error) {
	return v.SynchronizeTable(dev, v.transform.Table(dev))
}

// SynchronizeTable runs consistent early detection for a device against
// an explicitly provided final table instead of the verifier's own model
// manager. The live path is MarkSynchronized (which passes the internal
// transformer's table); what-if transactions pass tables from a cloned
// transformer so detection runs against the hypothetical model without
// replaying updates through this verifier.
func (v *Verifier) SynchronizeTable(dev fib.DeviceID, table *fib.Table) ([]Event, error) {
	if v.synced[dev] {
		return nil, nil
	}
	v.synced[dev] = true
	v.syncOrder = append(v.syncOrder, dev)
	// The device's behavior partition: effective predicate → action.
	rules := table.Rules()
	effs := table.EffectivePredicates(v.engine)

	before := len(v.events)
	for _, cs := range v.checks {
		if err := v.syncCheck(cs, dev, rules, effs); err != nil {
			return nil, err
		}
	}
	return append([]Event(nil), v.events[before:]...), nil
}

// SynchronizedDevices returns the devices marked synchronized, sorted.
func (v *Verifier) SynchronizedDevices() []fib.DeviceID {
	out := make([]fib.DeviceID, 0, len(v.synced))
	for dev := range v.synced {
		out = append(out, dev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// syncCheck refines the check's class partition by the device's behavior
// partition and feeds the per-class detectors (Algorithm 2's split +
// prune, plus the loop-detector analogue).
func (v *Verifier) syncCheck(cs *classState, dev fib.DeviceID, rules []fib.Rule, effs []bdd.Ref) error {
	e := v.engine
	classes := make([]bdd.Ref, 0, 4)
	switch cs.check.Kind {
	case CheckReach:
		for p := range cs.vgraphs {
			classes = append(classes, p)
		}
	case CheckLoopFree:
		for p := range cs.loops {
			classes = append(classes, p)
		}
	case CheckAnycast, CheckMulticast:
		for p := range cs.multi {
			classes = append(classes, p)
		}
	case CheckCoverage:
		for p := range cs.cover {
			classes = append(classes, p)
		}
	}
	for _, p := range classes {
		if cs.settled[p] {
			continue
		}
		// Split class p by the device's distinct actions over it.
		//flashvet:allow gcroot — transient split predicates within one feed call; dead before any collection can run
		type part struct {
			pred   bdd.Ref
			action fib.Action
		}
		var parts []part
		rem := p
		for i, eff := range effs {
			if rem == bdd.False {
				break
			}
			inter := e.And(rem, eff)
			if inter == bdd.False {
				continue
			}
			parts = append(parts, part{inter, rules[i].Action})
			rem = e.Diff(rem, eff)
		}
		if rem != bdd.False {
			// Headers the device has no rule for: it drops them.
			parts = append(parts, part{rem, fib.None})
		}
		// Merge parts with identical actions (their detection state
		// stays identical, no need to split).
		byAction := make(map[fib.Action]bdd.Ref, len(parts))
		var order []fib.Action
		for _, pt := range parts {
			if prev, ok := byAction[pt.action]; ok {
				byAction[pt.action] = e.Or(prev, pt.pred)
			} else {
				byAction[pt.action] = pt.pred
				order = append(order, pt.action)
			}
		}
		if err := v.applySplit(cs, p, dev, byAction, order); err != nil {
			return err
		}
	}
	return nil
}

func (v *Verifier) applySplit(cs *classState, p bdd.Ref, dev fib.DeviceID, byAction map[fib.Action]bdd.Ref, order []fib.Action) error {
	first := true
	for _, action := range order {
		pred := byAction[action]
		st := v.actionMap(action)
		var sub bdd.Ref
		if len(order) == 1 {
			sub = p // no split needed
		} else {
			sub = pred
		}
		switch cs.check.Kind {
		case CheckReach:
			vg := cs.vgraphs[p]
			if !first || len(order) > 1 {
				vg = vg.Clone()
			}
			if len(order) > 1 {
				cs.vgraphs[sub] = vg
			}
			if err := vg.Synchronize(dev, st); err != nil {
				return fmt.Errorf("ce2d: check %q: %w", cs.check.Name, err)
			}
			if verdict := vg.Verdict(); verdict != reach.Unknown {
				cs.settled[sub] = true
				v.events = append(v.events, Event{Check: cs.check.Name, Class: sub, Verdict: verdict})
			}
		case CheckLoopFree:
			ldet := cs.loops[p]
			if !first || len(order) > 1 {
				ldet = ldet.Clone()
			}
			if len(order) > 1 {
				cs.loops[sub] = ldet
			}
			res, err := ldet.Synchronize(dev, st)
			if err != nil {
				return fmt.Errorf("ce2d: check %q: %w", cs.check.Name, err)
			}
			if res != LoopUnknown {
				cs.settled[sub] = true
				v.events = append(v.events, Event{Check: cs.check.Name, Class: sub, Loop: res})
			}
		case CheckAnycast, CheckMulticast:
			mp := cs.multi[p]
			if !first || len(order) > 1 {
				mp = mp.Clone()
			}
			if len(order) > 1 {
				cs.multi[sub] = mp
			}
			if err := mp.Synchronize(dev, st); err != nil {
				return fmt.Errorf("ce2d: check %q: %w", cs.check.Name, err)
			}
			if verdict := mp.Verdict(); verdict != reach.Unknown {
				cs.settled[sub] = true
				v.events = append(v.events, Event{Check: cs.check.Name, Class: sub, Verdict: verdict})
			}
		case CheckCoverage:
			cov := cs.cover[p]
			if !first || len(order) > 1 {
				cov = cov.Clone()
			}
			if len(order) > 1 {
				cs.cover[sub] = cov
			}
			if err := cov.Synchronize(dev, st); err != nil {
				return fmt.Errorf("ce2d: check %q: %w", cs.check.Name, err)
			}
			if verdict := cov.Verdict(); verdict != reach.Unknown {
				cs.settled[sub] = true
				v.events = append(v.events, Event{Check: cs.check.Name, Class: sub, Verdict: verdict})
			}
		}
		first = false
	}
	if len(order) > 1 {
		// The old, coarser class is superseded by its refinement.
		switch cs.check.Kind {
		case CheckReach:
			delete(cs.vgraphs, p)
		case CheckLoopFree:
			delete(cs.loops, p)
		case CheckAnycast, CheckMulticast:
			delete(cs.multi, p)
		case CheckCoverage:
			delete(cs.cover, p)
		}
		delete(cs.settled, p)
	}
	return nil
}

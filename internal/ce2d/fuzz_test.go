package ce2d

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

// TestDispatcherFuzzConsistency is the central CE2D correctness property
// under adversarial message interleavings: two network states (epochs),
// per-device in-order delivery but arbitrary cross-device interleaving.
// Every deterministic loop report the dispatcher emits must match the
// ground truth of the *final converged FIBs of that epoch* — transient
// combinations must never leak — and once everything is delivered, the
// final epoch must settle to its ground truth.
func TestDispatcherFuzzConsistency(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(31000 + trial)))

		// Random connected topology, 4..8 nodes.
		n := 4 + rng.Intn(5)
		g := topo.New()
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), topo.RoleSwitch, -1)
		}
		for i := 1; i < n; i++ {
			g.AddLink(topo.NodeID(i), topo.NodeID(rng.Intn(i)))
		}
		for e := 0; e < n/2; e++ {
			a, b := topo.NodeID(rng.Intn(n)), topo.NodeID(rng.Intn(n))
			if a != b {
				g.AddLink(a, b)
			}
		}
		space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))

		// Per-epoch per-device behavior: forward to a random neighbor,
		// drop, or deliver.
		type behavior struct{ action fib.Action }
		randBehavior := func(dev topo.NodeID) behavior {
			nbrs := g.Neighbors(dev)
			switch r := rng.Intn(5); {
			case r == 0:
				return behavior{fib.Drop}
			case r == 1:
				return behavior{fib.Forward(topo.NodeID(n))} // deliver
			default:
				return behavior{fib.Forward(nbrs[rng.Intn(len(nbrs))])}
			}
		}
		epochs := []Epoch{"e0", "e1"}
		acts := make(map[Epoch][]behavior)
		for _, e := range epochs {
			bs := make([]behavior, n)
			for d := 0; d < n; d++ {
				bs[d] = randBehavior(topo.NodeID(d))
			}
			acts[e] = bs
		}
		// Ground truth: does epoch e's converged plane have a loop?
		hasLoop := func(e Epoch) bool {
			for start := 0; start < n; start++ {
				cur := topo.NodeID(start)
				for hops := 0; ; hops++ {
					nh, ok := acts[e][cur].action.NextHop()
					if !ok || nh >= topo.NodeID(n) {
						break
					}
					cur = nh
					if hops > n {
						return true
					}
				}
			}
			return false
		}
		truth := map[Epoch]bool{"e0": hasLoop("e0"), "e1": hasLoop("e1")}

		// Build per-device message sequences: e0 installs a wildcard
		// rule, e1 replaces it.
		type devMsg struct {
			dev topo.NodeID
			msg Msg
		}
		var perDev [][]devMsg
		for d := 0; d < n; d++ {
			id0 := int64(2*d + 1)
			id1 := int64(2*d + 2)
			r0 := fib.Rule{ID: id0, Match: bdd.True, Pri: 0, Action: acts["e0"][d].action}
			r1 := fib.Rule{ID: id1, Match: bdd.True, Pri: 0, Action: acts["e1"][d].action}
			perDev = append(perDev, []devMsg{
				{topo.NodeID(d), Msg{Device: fib.DeviceID(d), Epoch: "e0",
					Updates: []fib.Update{{Op: fib.Insert, Rule: r0}}}},
				{topo.NodeID(d), Msg{Device: fib.DeviceID(d), Epoch: "e1",
					Updates: []fib.Update{{Op: fib.Delete, Rule: r0}, {Op: fib.Insert, Rule: r1}}}},
			})
		}
		// Random global interleaving preserving per-device order.
		var stream []devMsg
		idx := make([]int, n)
		remaining := 2 * n
		for remaining > 0 {
			d := rng.Intn(n)
			if idx[d] < 2 {
				stream = append(stream, perDev[d][idx[d]])
				idx[d]++
				remaining--
			}
		}

		disp := NewDispatcher(func(Epoch) *Verifier {
			return NewVerifier(Config{
				Topo: g, Engine: space.E,
				Checks: []Check{{Name: "loops", Kind: CheckLoopFree, Space: bdd.True,
					CanExit: func(topo.NodeID) bool { return true }}},
			})
		})
		finalVerdicts := map[Epoch]LoopResult{}
		for _, dm := range stream {
			evs, err := disp.Receive(dm.msg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, ev := range evs {
				if ev.Event.Loop == LoopFound && !truth[ev.Epoch] {
					t.Fatalf("trial %d: false loop report for epoch %s", trial, ev.Epoch)
				}
				if ev.Event.Loop == LoopFree && truth[ev.Epoch] {
					t.Fatalf("trial %d: false loop-free report for epoch %s", trial, ev.Epoch)
				}
				if ev.Event.Loop != LoopUnknown {
					finalVerdicts[ev.Epoch] = ev.Event.Loop
				}
			}
		}
		// e1 is fully delivered: its verdict must exist and match truth.
		want := LoopFree
		if truth["e1"] {
			want = LoopFound
		}
		if got := finalVerdicts["e1"]; got != want {
			t.Fatalf("trial %d: e1 settled to %v, ground truth %v (loop=%v)",
				trial, got, want, truth["e1"])
		}
	}
}

// TestVerifierSplitFuzz drives random two-class FIBs through a verifier
// and checks per-class verdicts against per-class ground truth.
func TestVerifierSplitFuzz(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(52000 + trial)))
		n := 4 + rng.Intn(4)
		g := topo.New()
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), topo.RoleSwitch, -1)
		}
		for i := 1; i < n; i++ {
			g.AddLink(topo.NodeID(i), topo.NodeID(rng.Intn(i)))
		}
		space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		lower := space.Prefix("dst", 0x00, 1)

		// Each device: distinct random actions for the lower and upper
		// half of the header space.
		mkAct := func(dev topo.NodeID) fib.Action {
			nbrs := g.Neighbors(dev)
			switch r := rng.Intn(5); {
			case r == 0:
				return fib.Drop
			case r == 1:
				return fib.Forward(topo.NodeID(n))
			default:
				return fib.Forward(nbrs[rng.Intn(len(nbrs))])
			}
		}
		lo := make([]fib.Action, n)
		hi := make([]fib.Action, n)
		for d := 0; d < n; d++ {
			lo[d], hi[d] = mkAct(topo.NodeID(d)), mkAct(topo.NodeID(d))
		}
		hasLoop := func(acts []fib.Action) bool {
			for start := 0; start < n; start++ {
				cur := topo.NodeID(start)
				for hops := 0; ; hops++ {
					nh, ok := acts[cur].NextHop()
					if !ok || nh >= topo.NodeID(n) {
						break
					}
					cur = nh
					if hops > n {
						return true
					}
				}
			}
			return false
		}

		v := NewVerifier(Config{
			Topo: g, Engine: space.E,
			Checks: []Check{{Name: "loops", Kind: CheckLoopFree, Space: bdd.True,
				CanExit: func(topo.NodeID) bool { return true }}},
		})
		results := map[bdd.Ref]LoopResult{}
		for _, d := range rng.Perm(n) {
			dev := fib.DeviceID(d)
			ups := []fib.Update{
				{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: lower, Pri: 1, Action: lo[d]}},
				{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: bdd.True, Pri: 0, Action: hi[d]}},
			}
			if err := v.ApplyUpdates(dev, ups); err != nil {
				t.Fatal(err)
			}
			evs, err := v.MarkSynchronized(dev)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				results[ev.Class] = ev.Loop
			}
		}
		wantLo, wantHi := hasLoop(lo), hasLoop(hi)
		upper := space.E.Not(lower)
		check := func(class bdd.Ref, want bool, name string) {
			t.Helper()
			got, ok := results[class]
			if want {
				// A loop must be reported for this class (possibly for a
				// sub-class; accept class-exact match here since devices
				// use exactly two behaviors).
				if ok && got == LoopFree {
					t.Fatalf("trial %d: %s half reported loop-free, truth has loop", trial, name)
				}
				found := false
				for cls, r := range results {
					if r == LoopFound && space.E.Implies(cls, class) {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: %s half loop never reported", trial, name)
				}
				return
			}
			if ok && got == LoopFound {
				t.Fatalf("trial %d: %s half reported loop, truth loop-free", trial, name)
			}
		}
		check(lower, wantLo, "lower")
		check(upper, wantHi, "upper")
	}
}

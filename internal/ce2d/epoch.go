// Package ce2d implements Consistent, Efficient Early Detection (§4 of
// the paper): epoch-based consistent model construction, early detection
// of regular-expression requirement violations on decremental
// verification graphs, and consistent early loop detection with hyper
// node compression.
package ce2d

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/fib"
)

// Epoch is an epoch tag: a unique identifier of a global network state
// snapshot, computed by the device agent (e.g. a hash of the key/version
// pairs of the link-state store, as in the paper's OpenR agent).
type Epoch string

// EpochOf computes an epoch tag from the (key, version) pairs of a
// network-state store, the way the paper's OpenR agent does (an
// order-independent hash over all entries).
func EpochOf(state map[string]uint64) Epoch {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d;", k, state[k])
	}
	return Epoch(fmt.Sprintf("%016x", h.Sum64()))
}

// Tracker maintains the most recent epoch tag per device and the set of
// "active" epochs (those with no known succeeding epoch), implementing
// the happens-before bookkeeping of §4.1: if a device reports t1 and
// later t2, then t1 ≺ t2 and t1 can no longer be the converged state.
type Tracker struct {
	last     map[fib.DeviceID]Epoch
	active   map[Epoch]bool
	inactive map[Epoch]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		last:     make(map[fib.DeviceID]Epoch),
		active:   make(map[Epoch]bool),
		inactive: make(map[Epoch]bool),
	}
}

// Observe records that a device reported an epoch tag. It returns whether
// the tag is (now) active, plus any epochs that this observation
// deactivated (their verifiers should be stopped).
func (t *Tracker) Observe(dev fib.DeviceID, tag Epoch) (isActive bool, deactivated []Epoch) {
	if old, ok := t.last[dev]; ok && old != tag {
		// old happens-before tag: old can no longer be converged.
		if t.active[old] {
			delete(t.active, old)
			deactivated = append(deactivated, old)
		}
		t.inactive[old] = true
	}
	t.last[dev] = tag
	if t.inactive[tag] {
		return false, deactivated
	}
	t.active[tag] = true
	return true, deactivated
}

// Active reports whether an epoch is currently a potential converged
// state.
func (t *Tracker) Active(tag Epoch) bool { return t.active[tag] }

// ActiveEpochs returns the active set, sorted for determinism.
func (t *Tracker) ActiveEpochs() []Epoch {
	out := make([]Epoch, 0, len(t.active))
	for e := range t.active {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Last returns the most recent tag observed from a device.
func (t *Tracker) Last(dev fib.DeviceID) (Epoch, bool) {
	e, ok := t.last[dev]
	return e, ok
}

// SynchronizedDevices returns the devices whose most recent tag equals
// the given epoch — the devices whose FIBs are consistent with it.
func (t *Tracker) SynchronizedDevices(tag Epoch) []fib.DeviceID {
	var out []fib.DeviceID
	for d, e := range t.last {
		if e == tag {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package ce2d

import (
	"fmt"

	"repro/internal/reach"
	"repro/internal/topo"
)

// LoopResult is the three-valued outcome of consistent early loop
// detection for one equivalence class.
type LoopResult uint8

// Loop results.
const (
	// LoopUnknown: the synchronized information neither proves nor rules
	// out a loop yet.
	LoopUnknown LoopResult = iota
	// LoopFound: a loop exists in every completion of the current state
	// (either a cycle of synchronized devices, or — as in Figure 5(b) —
	// a state where every potential next hop of the unsynchronized
	// devices closes a cycle, assuming no unsynchronized drops).
	LoopFound
	// LoopFree: all devices are synchronized and no cycle exists.
	LoopFree
)

func (r LoopResult) String() string {
	switch r {
	case LoopFound:
		return "loop"
	case LoopFree:
		return "loop-free"
	default:
		return "unknown"
	}
}

// LoopDetector performs consistent early loop detection (§4.3, Algorithm
// 3) for one equivalence class: synchronized devices follow their actual
// next hops; connected components of unsynchronized devices are
// compressed into hyper nodes that may forward to any neighbor of the
// component.
type LoopDetector struct {
	g       *topo.Graph
	canExit func(topo.NodeID) bool
	sync    map[topo.NodeID]reach.SyncState
}

// NewLoopDetector creates a detector over the topology with no devices
// synchronized. canExit reports whether a device could deliver the
// packet out of the network (external port / owned prefix) while still
// unsynchronized — the "out" possibility of Figure 5(a). nil means every
// device might deliver, the conservative default (never a false loop
// report, but fewer early detections).
func NewLoopDetector(g *topo.Graph, canExit func(topo.NodeID) bool) *LoopDetector {
	if canExit == nil {
		canExit = func(topo.NodeID) bool { return true }
	}
	return &LoopDetector{g: g, canExit: canExit, sync: make(map[topo.NodeID]reach.SyncState)}
}

// Clone deep-copies the detector (used when an equivalence class splits).
func (ld *LoopDetector) Clone() *LoopDetector {
	c := NewLoopDetector(ld.g, ld.canExit)
	for k, v := range ld.sync {
		c.sync[k] = v
	}
	return c
}

// NumSynchronized reports how many devices have synchronized.
func (ld *LoopDetector) NumSynchronized() int { return len(ld.sync) }

// Synchronize records a device's converged behavior for this class and
// runs incremental detection: if no loop was detectable before, any new
// deterministic loop must involve the newly synchronized device
// (§4.3, "Incremental Detection").
func (ld *LoopDetector) Synchronize(dev topo.NodeID, st reach.SyncState) (LoopResult, error) {
	if old, ok := ld.sync[dev]; ok {
		if !sameSyncState(old, st) {
			return LoopUnknown, fmt.Errorf("ce2d: device %d re-synchronized with different behavior", dev)
		}
		return ld.check(dev), nil
	}
	ld.sync[dev] = st
	return ld.check(dev), nil
}

func sameSyncState(a, b reach.SyncState) bool {
	if a.Delivers != b.Delivers || len(a.NextHops) != len(b.NextHops) {
		return false
	}
	m := make(map[topo.NodeID]bool, len(a.NextHops))
	for _, x := range a.NextHops {
		m[x] = true
	}
	for _, x := range b.NextHops {
		if !m[x] {
			return false
		}
	}
	return true
}

// compressed is the hyper-compressed view built for one check.
type compressed struct {
	ld *LoopDetector
	// comp maps each unsynchronized device to its component rep.
	comp map[topo.NodeID]topo.NodeID
	// size is the component size per representative.
	size map[topo.NodeID]int
	// hyperOut caches the outgoing device set per representative.
	hyperOut map[topo.NodeID][]topo.NodeID
	// exitable marks components with a member that could deliver.
	exitable map[topo.NodeID]bool
}

// buildCompressed computes connected components of unsynchronized nodes.
func (ld *LoopDetector) buildCompressed() *compressed {
	c := &compressed{
		ld:       ld,
		comp:     make(map[topo.NodeID]topo.NodeID),
		size:     make(map[topo.NodeID]int),
		hyperOut: make(map[topo.NodeID][]topo.NodeID),
		exitable: make(map[topo.NodeID]bool),
	}
	for _, n := range ld.g.Nodes() {
		if _, synced := ld.sync[n.ID]; synced {
			continue
		}
		if _, done := c.comp[n.ID]; done {
			continue
		}
		// BFS the unsynchronized component from n.
		rep := n.ID
		queue := []topo.NodeID{n.ID}
		c.comp[n.ID] = rep
		var members []topo.NodeID
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			members = append(members, u)
			for _, v := range ld.g.Neighbors(u) {
				if _, synced := ld.sync[v]; synced {
					continue
				}
				if _, done := c.comp[v]; !done {
					c.comp[v] = rep
					queue = append(queue, v)
				}
			}
		}
		c.size[rep] = len(members)
		for _, m := range members {
			if ld.canExit(m) {
				c.exitable[rep] = true
				break
			}
		}
		// Out-edges of the hyper node: synchronized neighbors of any
		// member (the hyper node may emit the packet anywhere on its
		// border).
		seen := map[topo.NodeID]bool{}
		for _, m := range members {
			for _, v := range ld.g.Neighbors(m) {
				if _, synced := ld.sync[v]; synced && !seen[v] {
					seen[v] = true
					c.hyperOut[rep] = append(c.hyperOut[rep], v)
				}
			}
		}
	}
	return c
}

// id maps a device to its compressed-graph node.
func (c *compressed) id(dev topo.NodeID) topo.NodeID {
	if rep, ok := c.comp[dev]; ok {
		return rep
	}
	return dev
}

// result bit set for Algorithm 3's potentialResults.
type resultSet uint8

const (
	resLoop resultSet = 1 << iota
	resNoLoop
	resDeterministicLoop
	// resApprox marks that the walk traversed a hyper node compressed
	// from two or more devices. Such components make the compressed walk
	// an over-approximation (re-entering the component at a different
	// member may escape), so an all-branches-loop result is no longer a
	// certainty and must stay Unknown. Single-device hyper nodes keep the
	// walk exact: under fixed per-device choices, any revisit is a real
	// loop.
	resApprox
)

// check runs Algorithm 3 from the given start device.
func (ld *LoopDetector) check(start topo.NodeID) LoopResult {
	c := ld.buildCompressed()
	onPath := make(map[topo.NodeID]bool)
	res := c.detect(c.id(start), onPath, false, 0)
	switch {
	case res&resDeterministicLoop != 0:
		return LoopFound
	case res&resLoop != 0 && res&(resNoLoop|resApprox) == 0:
		// Every completion loops (Figure 5(b)): report early. Only exact
		// when no multi-device hyper node was compressed away.
		return LoopFound
	case res == resNoLoop && len(ld.sync) == ld.g.N():
		// This walk is loop-free and everything is synchronized; confirm
		// globally before declaring the class loop-free, since a cycle
		// disjoint from this walk would not be on it.
		return ld.CheckAll()
	default:
		return LoopUnknown
	}
}

// detect explores the compressed graph. v is a compressed node
// (synchronized device or hyper representative); onPath is the current
// walk; hyper reports whether the walk has traversed a hyper node.
func (c *compressed) detect(v topo.NodeID, onPath map[topo.NodeID]bool, hyper bool, depth int) resultSet {
	if depth > 4*c.ld.g.N()+8 {
		// Defensive bound; cannot trigger because walks revisit within
		// |V| steps, but guards against future changes.
		return resLoop
	}
	isHyper := false
	if _, ok := c.size[v]; ok {
		isHyper = true
	}
	if onPath[v] {
		if hyper {
			return resLoop // potential loop through a hyper node
		}
		return resDeterministicLoop // cycle of synchronized devices only
	}
	var res resultSet
	var outs []topo.NodeID
	if isHyper {
		if c.size[v] >= 2 {
			// Two or more mutually reachable unsynchronized devices can
			// always loop among themselves — a possibility, and an
			// over-approximation marker for certainty conclusions.
			res |= resLoop | resApprox
		}
		if c.exitable[v] {
			// Some member could deliver the packet out of the network
			// (the "out" arrow of Figure 5(a)).
			res |= resNoLoop
		}
		outs = c.hyperOut[v]
		if len(outs) == 0 && c.size[v] < 2 {
			// Isolated unsynchronized device with no synchronized
			// neighbors: it can only deliver/drop externally.
			return res | resNoLoop
		}
	} else {
		st := c.ld.sync[v]
		if st.Delivers && len(st.NextHops) == 0 {
			return resNoLoop
		}
		if len(st.NextHops) == 0 {
			return resNoLoop // drop terminates the walk
		}
		outs = st.NextHops
	}
	onPath[v] = true
	for _, u := range outs {
		res |= c.detect(c.id(u), onPath, hyper || isHyper, depth+1)
		if res&resDeterministicLoop != 0 {
			break
		}
	}
	delete(onPath, v)
	return res
}

// CheckAll runs detection from every synchronized device, returning the
// strongest consistent result (used for whole-class queries rather than
// incremental per-device checks).
func (ld *LoopDetector) CheckAll() LoopResult {
	c := ld.buildCompressed()
	sawUnknown := false
	for dev := range ld.sync {
		onPath := make(map[topo.NodeID]bool)
		res := c.detect(c.id(dev), onPath, false, 0)
		switch {
		case res&resDeterministicLoop != 0:
			return LoopFound
		case res&resLoop != 0 && res&(resNoLoop|resApprox) == 0:
			return LoopFound
		case res != resNoLoop:
			sawUnknown = true
		}
	}
	if !sawUnknown && len(ld.sync) == ld.g.N() {
		return LoopFree
	}
	return LoopUnknown
}

// Package exps implements the paper's evaluation experiments (§5): every
// table and figure has a Run function returning structured results, which
// cmd/flashbench formats as the paper's rows/series and the top-level
// benchmarks assert and time. DESIGN.md carries the per-experiment index.
package exps

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/apkeep"
	"repro/internal/bdd"
	"repro/internal/deltanet"
	"repro/internal/fib"
	"repro/internal/imt"
	"repro/internal/obs"
	"repro/internal/pat"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Metrics optionally attaches the observability layer to the Flash
// verifiers the experiments construct: every RunFlash transformer
// publishes its per-block phase latency histograms (map_ns, reduce_ns,
// apply_ns — the Figure 11 phases) and counters under a sub-registry
// named after the workload. Nil (the default) is free; cmd/flashbench
// sets it when run with -metrics.
var Metrics *obs.Registry

// Scale selects experiment sizing. The paper's LNet has 6,016 switches;
// these run the same generators at laptop scale (see DESIGN.md).
type Scale int

// Scales.
const (
	// Tiny is for unit tests: seconds of total work.
	Tiny Scale = iota
	// Small is the default for `go test -bench`.
	Small
	// Medium is flashbench's default.
	Medium
	// Large approaches the paper's setting shape (minutes of work).
	Large
)

// FabricFor returns the fabric parameters for a scale.
func FabricFor(s Scale) topo.FabricParams {
	switch s {
	case Tiny:
		return topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1}
	case Small:
		return topo.FabricParams{Pods: 4, TorsPerPod: 4, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 2}
	case Medium:
		return topo.FabricParams{Pods: 8, TorsPerPod: 6, AggsPerPod: 4, SpinePlanes: 4, SpinePer: 4}
	default:
		return topo.FabricParams{Pods: 16, TorsPerPod: 12, AggsPerPod: 4, SpinePlanes: 4, SpinePer: 8}
	}
}

// Setting names a workload generator.
type Setting string

// Settings of Table 2.
const (
	LNetAPSP      Setting = "LNet-apsp"
	LNetECMP      Setting = "LNet-ecmp"
	LNetSMR       Setting = "LNet-smr"
	AirtelTrace   Setting = "Airtel-trace"
	StanfordTrace Setting = "Stanford-trace"
	I2Trace       Setting = "I2-trace"
)

// AllSettings lists the Fast IMT evaluation settings in Table 3's order.
var AllSettings = []Setting{LNetAPSP, LNetECMP, LNetSMR, AirtelTrace, StanfordTrace, I2Trace}

// Build generates the workload for a setting at a scale.
func Build(s Setting, scale Scale) *workload.Workload {
	switch s {
	case LNetAPSP:
		return workload.LNetAPSP(FabricFor(scale))
	case LNetECMP:
		return workload.LNetECMP(FabricFor(scale))
	case LNetSMR:
		return workload.LNetSMR(FabricFor(scale))
	case AirtelTrace:
		return workload.TraceAPSP(string(AirtelTrace), topo.Airtel())
	case StanfordTrace:
		return workload.TraceAPSP(string(StanfordTrace), topo.Stanford())
	case I2Trace:
		return workload.TraceAPSP(string(I2Trace), topo.Internet2())
	default:
		panic(fmt.Sprintf("exps: unknown setting %q", s))
	}
}

// SystemResult is one verifier's measurement in a model-construction
// experiment.
type SystemResult struct {
	System string
	// Time is the total model update time.
	Time time.Duration
	// TimedOut reports that the run was aborted at Time.
	TimedOut bool
	// Ops is the number of predicate operations (BDD ∧/∨/¬ for Flash and
	// APKeep*, per-(device,atom) operations for Delta-net*).
	Ops uint64
	// MemBytes is the heap growth attributable to the run.
	MemBytes uint64
	// Units is the structural memory proxy (BDD+PAT nodes, or
	// (device,atom,rule) pairs for Delta-net*).
	Units int
	// ECs is the final equivalence class count (where applicable).
	ECs int
}

func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func memDelta(before uint64) uint64 {
	after := heapAlloc()
	if after < before {
		return 0
	}
	return after - before
}

// RunDeltaNet replays the sequence through Delta-net* with per-update
// semantics, aborting at timeout (0 = none).
func RunDeltaNet(w *workload.Workload, seq []workload.DevUpdate, timeout time.Duration) SystemResult {
	before := heapAlloc()
	v := deltanet.New(w.Layout)
	res := SystemResult{System: "Delta-net*"}
	start := time.Now()
	for i, du := range seq {
		if err := v.Apply(du.Dev, du.Update); err != nil {
			panic(fmt.Sprintf("deltanet: %v", err))
		}
		if timeout > 0 && i%16 == 0 && time.Since(start) > timeout {
			res.TimedOut = true
			break
		}
	}
	res.Time = time.Since(start)
	res.Ops = v.Ops()
	res.Units = v.PeakPairCount()
	res.ECs = v.ECCount()
	res.MemBytes = memDelta(before)
	return res
}

// RunAPKeep replays the sequence through APKeep* (per-update EC
// maintenance), restricted to universe (bdd.True for unpartitioned).
func RunAPKeep(w *workload.Workload, seq []workload.DevUpdate, universe bdd.Ref, timeout time.Duration) SystemResult {
	before := heapAlloc()
	store := pat.NewStore()
	primary := w.Layout.Fields()[0]
	v := apkeep.New(w.Space.E, store, universe, primary.Name, primary.Bits)
	res := SystemResult{System: "APKeep*"}
	opsBefore := w.Space.E.Ops()
	start := time.Now()
	for i, du := range seq {
		u := du.Update
		u.Rule.Match = w.Space.E.And(u.Rule.Match, universe)
		if u.Rule.Match == bdd.False {
			continue
		}
		if err := v.Apply(du.Dev, u); err != nil {
			panic(fmt.Sprintf("apkeep: %v", err))
		}
		if timeout > 0 && i%16 == 0 && time.Since(start) > timeout {
			res.TimedOut = true
			break
		}
	}
	res.Time = time.Since(start)
	res.Ops = w.Space.E.Ops() - opsBefore
	res.Units = w.Space.E.NumNodes() + store.NumNodes()
	res.ECs = v.Model().Len()
	res.MemBytes = memDelta(before)
	return res
}

// RunFlash replays the sequence through Fast IMT with the given block
// size threshold (0 = single block), restricted to universe.
func RunFlash(w *workload.Workload, seq []workload.DevUpdate, universe bdd.Ref, blockSize int, perUpdate bool) (SystemResult, imt.Stats) {
	before := heapAlloc()
	store := pat.NewStore()
	tr := imt.NewTransformer(w.Space.E, store, universe)
	tr.PerUpdate = perUpdate
	tr.Instrument(Metrics.Sub(w.Name))
	res := SystemResult{System: "Flash"}
	opsBefore := w.Space.E.Ops()
	start := time.Now()
	for _, batch := range workload.Chunk(seq, blockSize) {
		batch = restrict(w, batch, universe)
		if err := tr.ApplyBlock(batch); err != nil {
			panic(fmt.Sprintf("flash: %v", err))
		}
	}
	res.Time = time.Since(start)
	res.Ops = w.Space.E.Ops() - opsBefore
	res.Units = w.Space.E.NumNodes() + store.NumNodes()
	res.ECs = tr.Model().Len()
	res.MemBytes = memDelta(before)
	return res, tr.Stats()
}

// newAPKeepForWorkload builds an APKeep* verifier sized to a workload.
func newAPKeepForWorkload(w *workload.Workload) *apkeep.Verifier {
	primary := w.Layout.Fields()[0]
	return apkeep.New(w.Space.E, pat.NewStore(), bdd.True, primary.Name, primary.Bits)
}

// restrict intersects every rule match with the universe, dropping empty
// ones; deletes of dropped rules are dropped too.
func restrict(w *workload.Workload, batch []fib.Block, universe bdd.Ref) []fib.Block {
	if universe == bdd.True {
		return batch
	}
	out := make([]fib.Block, 0, len(batch))
	for _, b := range batch {
		nb := fib.Block{Device: b.Device}
		for _, u := range b.Updates {
			m := w.Space.E.And(u.Rule.Match, universe)
			if m == bdd.False {
				continue
			}
			u.Rule.Match = m
			nb.Updates = append(nb.Updates, u)
		}
		if len(nb.Updates) > 0 {
			out = append(out, nb)
		}
	}
	return out
}

package exps

import (
	"math/rand"
	"sort"

	"repro/internal/bdd"
	"repro/internal/ce2d"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/openr"
	"repro/internal/pat"
	"repro/internal/topo"
)

// Second is one second of virtual time.
const Second = openr.Time(1_000_000)

// i2Setup builds the Internet2 simulation substrate: every node owns a
// prefix of a 16-bit destination space.
func i2Setup(opts openr.Options) (*openr.Sim, *topo.Graph, *hs.Space) {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	return openr.New(g, space, owners, opts), g, space
}

// Fig8Point is one event of the Figure 8 timeline.
type Fig8Point struct {
	At     openr.Time
	Kind   string // "update" | "PUV" | "BUV" | "CE2D"
	Device string // update points: reporting switch
	Epoch  string
	Loop   bool // verifier points: true = loop reported
}

// Fig8Result is the timeline of Figure 8: FIB update arrivals and the
// deterministic reports of per-update verification (PUV), block-update
// verification (BUV), and CE2D, under two consecutive link failures.
type Fig8Result struct {
	Points []Fig8Point
	// TransientLoops counts false loop reports per strategy.
	PUVTransient, BUVTransient, CE2DLoops int
}

// naiveLoopCheck detects forwarding loops in the *current* (possibly
// inconsistent) FIB snapshot held by a transformer: for each destination
// owner's representative header, follow next hops.
func naiveLoopCheck(tr *imt.Transformer, space *hs.Space, g *topo.Graph, owners []topo.NodeID) bool {
	width := space.Layout.FieldBits("dst")
	plen := 1
	for 1<<uint(plen) < len(owners) {
		plen++
	}
	for i := range owners {
		h := uint64(i) << uint(width-plen)
		asg := space.Assignment(hs.Header{h})
		// Follow next hops from every node.
		for start := 0; start < g.N(); start++ {
			cur := topo.NodeID(start)
			seen := 0
			for {
				act := tr.Table(cur).Lookup(space.E, asg)
				nh, ok := act.NextHop()
				if !ok || nh >= topo.NodeID(g.N()) {
					break
				}
				cur = nh
				seen++
				if seen > g.N() {
					return true
				}
			}
		}
	}
	return false
}

// RunFig8 reproduces the Figure 8 run: two consecutive link failures
// (chic—atla, then chic—kans) on Internet2 with a healthy control plane.
// PUV and BUV verify the transient snapshot and report transient loops;
// CE2D reports only epoch-consistent results.
func RunFig8() Fig8Result {
	var out Fig8Result
	sim, g, space := i2Setup(openr.DefaultOptions())
	sim.Run(0)
	bootstrap := sim.Messages()
	sim.FailLink(20_000, g.MustByName("chic"), g.MustByName("atla"))
	sim.FailLink(60_000, g.MustByName("chic"), g.MustByName("kans"))
	sim.Run(120 * Second)
	msgs := sim.Messages()

	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}

	// PUV / BUV state: one continuously-updated snapshot.
	puv := imt.NewTransformer(space.E, pat.NewStore(), bdd.True)
	puv.PerUpdate = true
	// CE2D: full dispatcher.
	disp := ce2d.NewDispatcher(func(ce2d.Epoch) *ce2d.Verifier {
		return ce2d.NewVerifier(ce2d.Config{
			Topo: g, Engine: space.E,
			Checks: []ce2d.Check{{Name: "loops", Kind: ce2d.CheckLoopFree, Space: bdd.True,
				CanExit: func(topo.NodeID) bool { return true }}},
		})
	})
	feed := func(m openr.Msg, record bool) {
		if record {
			out.Points = append(out.Points, Fig8Point{
				At: m.At, Kind: "update",
				Device: g.Node(m.Msg.Device).Name, Epoch: string(m.Msg.Epoch),
			})
		}
		// PUV: per update.
		for _, u := range m.Msg.Updates {
			if err := puv.ApplyBlock([]fib.Block{{Device: m.Msg.Device, Updates: []fib.Update{u}}}); err != nil {
				panic(err)
			}
			if record && naiveLoopCheck(puv, space, g, owners) {
				out.Points = append(out.Points, Fig8Point{At: m.At, Kind: "PUV", Loop: true})
				out.PUVTransient++
			}
		}
		// BUV: once per block, on the same snapshot.
		if record && naiveLoopCheck(puv, space, g, owners) {
			out.Points = append(out.Points, Fig8Point{At: m.At, Kind: "BUV", Loop: true})
			out.BUVTransient++
		}
		evs, err := disp.Receive(m.Msg)
		if err != nil {
			panic(err)
		}
		if !record {
			return
		}
		for _, ev := range evs {
			loop := ev.Event.Loop == ce2d.LoopFound
			out.Points = append(out.Points, Fig8Point{
				At: m.At, Kind: "CE2D", Epoch: string(ev.Epoch), Loop: loop,
			})
			if loop {
				out.CE2DLoops++
			}
		}
	}
	for _, m := range bootstrap {
		feed(m, false)
	}
	for _, m := range msgs {
		feed(m, true)
	}
	return out
}

// CDF is a sorted sample of detection times (virtual µs); -1 entries mean
// the fallback (waiting for the dampened node).
type CDF []openr.Time

// Fraction reports the fraction of samples at or below t.
func (c CDF) Fraction(t openr.Time) float64 {
	n := 0
	for _, v := range c {
		if v >= 0 && v <= t {
			n++
		}
	}
	return float64(n) / float64(len(c))
}

// RunFig9OpenR runs the I2-OpenR/1buggy-loop-lt setting: 50 trials with a
// buggy switch and one random dampened (60 s) switch; each sample is the
// virtual time at which CE2D reports the loop, measured from the link
// event.
func RunFig9OpenR(trials int, seed int64) CDF {
	rng := rand.New(rand.NewSource(seed))
	var out CDF
	for trial := 0; trial < trials; trial++ {
		g := topo.Internet2()
		opts := openr.DefaultOptions()
		buggy := topo.NodeID(rng.Intn(g.N()))
		dampened := topo.NodeID(rng.Intn(g.N()))
		const eventAt = 10_000
		opts.Buggy = map[topo.NodeID]bool{buggy: true}
		opts.BuggyAfter = eventAt // the bootstrap state is correct
		opts.SendDelay = func(n topo.NodeID) openr.Time {
			if n == dampened {
				return 60 * Second
			}
			return 0
		}
		space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
		owners := make([]topo.NodeID, g.N())
		for i := range owners {
			owners[i] = topo.NodeID(i)
		}
		sim := openr.New(g, space, owners, opts)
		disp := ce2d.NewDispatcher(func(ce2d.Epoch) *ce2d.Verifier {
			return ce2d.NewVerifier(ce2d.Config{
				Topo: g, Engine: space.E,
				Checks: []ce2d.Check{{Name: "loops", Kind: ce2d.CheckLoopFree, Space: bdd.True,
					CanExit: func(topo.NodeID) bool { return true }}},
			})
		})
		// Fail a random link to force reconvergence through the buggy SPF.
		links := g.Links()
		l := links[rng.Intn(len(links))]
		sim.FailLink(eventAt, l[0], l[1])
		sim.Run(120 * Second)

		msgs := sim.Messages()
		// Ground truth: the random failure must actually drive the buggy
		// SPF into creating a loop; otherwise the trial has nothing to
		// detect and is not a sample of the paper's setting — retry.
		if !hasTwoCycle(msgs, g, buggy) {
			trial--
			continue
		}
		found := openr.Time(-1)
		for _, m := range msgs {
			evs, err := disp.Receive(m.Msg)
			if err != nil {
				panic(err)
			}
			for _, ev := range evs {
				if ev.Event.Loop == ce2d.LoopFound && found < 0 {
					found = m.At - eventAt
				}
			}
		}
		out = append(out, found)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hasTwoCycle inspects the final FIB state in an agent message stream for
// a 2-cycle through the given device.
func hasTwoCycle(msgs []openr.Msg, g *topo.Graph, dev topo.NodeID) bool {
	final := make(map[fib.DeviceID]map[uint64]topo.NodeID)
	for _, m := range msgs {
		nh := final[m.Msg.Device]
		if nh == nil {
			nh = make(map[uint64]topo.NodeID)
			final[m.Msg.Device] = nh
		}
		for _, u := range m.Msg.Updates {
			key := u.Rule.Desc[0].Value
			switch u.Op {
			case fib.Delete:
				delete(nh, key)
			case fib.Insert:
				if h, ok := u.Rule.Action.NextHop(); ok && h < topo.NodeID(g.N()) {
					nh[key] = h
				} else {
					delete(nh, key)
				}
			}
		}
	}
	for key, nh := range final[dev] {
		if back, ok := final[nh][key]; ok && back == dev {
			return true
		}
	}
	return false
}

// Fig14Series is the cumulative update-arrival series of Figure 14
// (Appendix A): bursts triggered by an inter-domain link failure and an
// intra-domain link recovery.
type Fig14Series struct {
	// Times and Counts form the cumulative distribution of update
	// arrivals at the verifier (virtual time).
	Times  []openr.Time
	Counts []int
	// Burst1 and Burst2 count the updates arriving within one second of
	// each of the two events.
	Burst1, Burst2 int
}

// RunFig14 reproduces the Appendix A update-storm analysis on the
// Figure 13 topology: border routers A and B reach an external node that
// owns `prefixes` prefixes; failing the A-side uplink triggers a burst
// (all traffic shifts to B), then an intra-domain link recovery at C
// triggers a second burst.
func RunFig14(prefixes int) Fig14Series {
	g := topo.New()
	a := g.AddNode("A", topo.RoleSwitch, -1)
	b := g.AddNode("B", topo.RoleSwitch, -1)
	c := g.AddNode("C", topo.RoleSwitch, -1)
	inet := g.AddNode("inet", topo.RoleSwitch, -1)
	g.AddLink(a, inet)
	g.AddLink(b, inet)
	g.AddLink(a, b)
	g.AddLink(a, c)
	g.AddLink(c, b) // recovered later; failed at t=1µs below

	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	owners := make([]topo.NodeID, prefixes)
	for i := range owners {
		owners[i] = inet
	}
	sim := openr.New(g, space, owners, openr.DefaultOptions())
	sim.FailLink(1, c, b) // pre-condition: C—B down initially
	const event1 = 2 * Second
	const event2 = 6 * Second
	sim.FailLink(event1, a, inet) // inter-domain failure (Fig 13b)
	sim.RestoreLink(event2, c, b) // intra-domain recovery (Fig 13c)
	sim.Run(event2 + 30*Second)

	var out Fig14Series
	total := 0
	for _, m := range sim.Messages() {
		if m.At < event1-Second {
			continue // bootstrap / pre-condition traffic
		}
		total += len(m.Msg.Updates)
		out.Times = append(out.Times, m.At)
		out.Counts = append(out.Counts, total)
		if m.At >= event1 && m.At < event1+Second {
			out.Burst1 += len(m.Msg.Updates)
		}
		if m.At >= event2 && m.At < event2+Second {
			out.Burst2 += len(m.Msg.Updates)
		}
	}
	return out
}

// RunFig10Trace runs the I2-trace-loop-lt setting for a given number of
// dampened devices D: every node reports a converged FIB containing a
// forwarding loop between two random adjacent devices; D random devices
// are dampened by 60 s, the rest arrive uniformly within 800 ms. The
// sample is when CE2D first reports the loop.
func RunFig10Trace(trials, dampenedCount int, seed int64) CDF {
	rng := rand.New(rand.NewSource(seed))
	var out CDF
	g := topo.Internet2()
	for trial := 0; trial < trials; trial++ {
		space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
		owners := make([]topo.NodeID, g.N())
		for i := range owners {
			owners[i] = topo.NodeID(i)
		}
		// Pick the loop pair: two adjacent devices pointing at each other
		// for a victim destination owned by neither.
		links := g.Links()
		var a, b topo.NodeID
		var victim int
		for {
			l := links[rng.Intn(len(links))]
			a, b = l[0], l[1]
			victim = rng.Intn(len(owners))
			if owners[victim] != a && owners[victim] != b {
				break
			}
		}
		// Build each device's converged-but-buggy FIB.
		sim := openr.New(g, space, owners, openr.DefaultOptions())
		sim.Run(0)
		msgs := sim.Messages()
		for mi := range msgs {
			dev := msgs[mi].Msg.Device
			if dev != a && dev != b {
				continue
			}
			other := a
			if dev == a {
				other = b
			}
			for ui, u := range msgs[mi].Msg.Updates {
				if int(u.Rule.Desc[0].Value>>uint(16-4)) == victim {
					msgs[mi].Msg.Updates[ui].Rule.Action = fib.Forward(other)
				}
			}
		}
		// Arrival times: D dampened at 60 s, others uniform in [0, 800ms].
		perm := rng.Perm(g.N())
		arrival := make([]openr.Time, g.N())
		for i, p := range perm {
			if i < dampenedCount {
				arrival[p] = 60 * Second
			} else {
				arrival[p] = openr.Time(rng.Int63n(800_000))
			}
		}
		for mi := range msgs {
			msgs[mi].At = arrival[msgs[mi].Msg.Device]
		}
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].At < msgs[j].At })

		disp := ce2d.NewDispatcher(func(ce2d.Epoch) *ce2d.Verifier {
			return ce2d.NewVerifier(ce2d.Config{
				Topo: g, Engine: space.E,
				Checks: []ce2d.Check{{Name: "loops", Kind: ce2d.CheckLoopFree, Space: bdd.True,
					CanExit: func(topo.NodeID) bool { return true }}},
			})
		})
		found := openr.Time(-1)
		for _, m := range msgs {
			evs, err := disp.Receive(m.Msg)
			if err != nil {
				panic(err)
			}
			for _, ev := range evs {
				if ev.Event.Loop == ce2d.LoopFound && found < 0 {
					found = m.At
				}
			}
		}
		out = append(out, found)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

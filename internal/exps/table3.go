package exps

import (
	"time"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/imt"
	"repro/internal/workload"
)

// Table3Row is one row of Table 3: the three systems compared on one
// setting (with subspace partitioning applied to all three, as in the
// paper's "Subspace" rows).
type Table3Row struct {
	Setting   Setting
	Subspaces int
	Rules     int
	Updates   int
	DeltaNet  SystemResult
	APKeep    SystemResult
	Flash     SystemResult
	FlashIMT  imt.Stats
}

// Speedup reports baseline time over Flash time.
func (r Table3Row) Speedup(baseline SystemResult) float64 {
	if r.Flash.Time <= 0 {
		return 0
	}
	return float64(baseline.Time) / float64(r.Flash.Time)
}

// RunTable3 runs one Table 3 row: all three systems on the same
// insert-then-delete update sequence, partitioned into nsub subspaces
// (1 = unpartitioned), each baseline capped at timeout per subspace.
func RunTable3(s Setting, scale Scale, nsub int, timeout time.Duration) Table3Row {
	row := Table3Row{Setting: s, Subspaces: nsub}

	// Delta-net*: independent per-subspace verifiers over descriptor-
	// restricted rules.
	{
		w := Build(s, scale)
		row.Rules = w.NumRules()
		seq := w.InsertThenDelete()
		row.Updates = len(seq)
		row.DeltaNet = runDeltaNetPartitioned(w, seq, nsub, timeout)
	}
	// APKeep*: per-update EC maintenance per subspace (fresh workload so
	// each system pays its own BDD costs).
	{
		w := Build(s, scale)
		seq := w.InsertThenDelete()
		row.APKeep = runPartitioned(w, nsub, "APKeep*", func(universe bdd.Ref) SystemResult {
			return RunAPKeep(w, seq, universe, timeout)
		})
	}
	// Flash: one block per subspace.
	{
		w := Build(s, scale)
		seq := w.InsertThenDelete()
		var stats imt.Stats
		row.Flash = runPartitioned(w, nsub, "Flash", func(universe bdd.Ref) SystemResult {
			// One block per phase: Algorithm 1's cancel-pair removal
			// would otherwise annihilate the insert-then-delete
			// sequence inside a single block.
			r, st := RunFlash(w, seq, universe, w.NumRules(), false)
			stats.MapTime += st.MapTime
			stats.ReduceTime += st.ReduceTime
			stats.ApplyTime += st.ApplyTime
			stats.Updates += st.Updates
			stats.Atomic += st.Atomic
			stats.Aggregated += st.Aggregated
			return r
		})
		row.FlashIMT = stats
	}
	return row
}

// runPartitioned sums a per-subspace runner over the workload's subspace
// partition.
func runPartitioned(w *workload.Workload, nsub int, name string, run func(universe bdd.Ref) SystemResult) SystemResult {
	universes := []bdd.Ref{bdd.True}
	if nsub > 1 {
		universes = w.Subspaces(nsub)
	}
	out := SystemResult{System: name}
	for _, u := range universes {
		r := run(u)
		out.Time += r.Time
		out.Ops += r.Ops
		out.MemBytes += r.MemBytes
		out.Units += r.Units
		out.ECs += r.ECs
		out.TimedOut = out.TimedOut || r.TimedOut
	}
	return out
}

// runDeltaNetPartitioned routes descriptor-restricted updates into
// per-subspace Delta-net* verifiers.
func runDeltaNetPartitioned(w *workload.Workload, seq []workload.DevUpdate, nsub int, timeout time.Duration) SystemResult {
	if nsub <= 1 {
		return RunDeltaNet(w, seq, timeout)
	}
	bits := 0
	for 1<<uint(bits) < nsub {
		bits++
	}
	field := w.Layout.Fields()[0]
	out := SystemResult{System: "Delta-net*"}
	for i := 0; i < nsub; i++ {
		sub := make([]workload.DevUpdate, 0, len(seq)/nsub)
		for _, du := range seq {
			desc, ok := restrictDesc(du.Update.Rule.Desc, field.Name, uint64(i), bits, field.Bits)
			if !ok {
				continue
			}
			nu := du
			nu.Update.Rule.Desc = desc
			sub = append(sub, nu)
		}
		r := RunDeltaNet(w, sub, timeout)
		out.Time += r.Time
		out.Ops += r.Ops
		out.MemBytes += r.MemBytes
		out.Units += r.Units
		out.ECs += r.ECs
		out.TimedOut = out.TimedOut || r.TimedOut
	}
	return out
}

// restrictDesc intersects a rule descriptor with a subspace constraint on
// the top bits of a field, reporting ok=false when the intersection is
// empty. The field constraint (if any) is rewritten as a ternary match.
func restrictDesc(desc fib.MatchDesc, field string, topVal uint64, topBits, width int) (fib.MatchDesc, bool) {
	subMask := ((uint64(1) << uint(topBits)) - 1) << uint(width-topBits)
	subVal := topVal << uint(width-topBits)
	out := make(fib.MatchDesc, 0, len(desc)+1)
	found := false
	for _, f := range desc {
		if f.Field != field {
			out = append(out, f)
			continue
		}
		found = true
		var val, mask uint64
		switch f.Kind {
		case fib.MatchPrefix:
			if f.Len == 0 {
				val, mask = 0, 0
			} else {
				mask = ((uint64(1) << uint(f.Len)) - 1) << uint(width-f.Len)
				val = f.Value & mask
			}
		case fib.MatchTernary:
			val, mask = f.Value&f.Mask, f.Mask
		}
		// Conflict on overlapping fixed bits = empty intersection.
		common := mask & subMask
		if val&common != subVal&common {
			return nil, false
		}
		out = append(out, fib.FieldMatch{
			Field: field, Kind: fib.MatchTernary,
			Value: val | subVal, Mask: mask | subMask,
		})
	}
	if !found {
		out = append(out, fib.FieldMatch{
			Field: field, Kind: fib.MatchTernary, Value: subVal, Mask: subMask,
		})
	}
	return out, true
}

// Fig6Result is the no-partition storm comparison of Figure 6.
type Fig6Result struct {
	Setting  Setting
	DeltaNet SystemResult
	APKeep   SystemResult
	Flash    SystemResult
}

// RunFig6 runs the baseline storm experiment: the full insert sequence of
// a complex-forwarding setting fed to each system without subspace
// partitioning, baselines capped at timeout.
func RunFig6(s Setting, scale Scale, timeout time.Duration) Fig6Result {
	out := Fig6Result{Setting: s}
	{
		w := Build(s, scale)
		out.DeltaNet = RunDeltaNet(w, w.InsertSequence(), timeout)
	}
	{
		w := Build(s, scale)
		out.APKeep = RunAPKeep(w, w.InsertSequence(), bdd.True, timeout)
	}
	{
		w := Build(s, scale)
		r, _ := RunFlash(w, w.InsertSequence(), bdd.True, 0, false)
		out.Flash = r
	}
	return out
}

// Fig7Point is one point of Figure 7: block size threshold vs normalized
// model update speed.
type Fig7Point struct {
	BSTFraction float64 // block size threshold / FIB scale
	Normalized  float64 // T(single block) / T(this threshold)
}

// RunFig7 sweeps the block size threshold for one setting.
func RunFig7(s Setting, scale Scale, fractions []float64) []Fig7Point {
	base := Build(s, scale)
	seq := base.InsertThenDelete()
	fibScale := base.NumRules()
	baseline, _ := RunFlash(base, seq, bdd.True, fibScale, false)

	out := make([]Fig7Point, 0, len(fractions))
	for _, f := range fractions {
		bst := int(f * float64(fibScale))
		if bst < 1 {
			bst = 1
		}
		w := Build(s, scale)
		r, _ := RunFlash(w, w.InsertThenDelete(), bdd.True, bst, false)
		out = append(out, Fig7Point{
			BSTFraction: f,
			Normalized:  float64(baseline.Time) / float64(r.Time),
		})
	}
	return out
}

// Fig11Result is the phase breakdown of Figure 11 for the I2-trace
// setting: APKeep*, Flash in per-update mode, and Flash.
type Fig11Result struct {
	APKeepMap      time.Duration // computing atomic overwrites
	APKeepApply    time.Duration // applying overwrites
	PerUpdMap      time.Duration
	PerUpdReduce   time.Duration
	PerUpdApply    time.Duration
	FlashMap       time.Duration
	FlashReduce    time.Duration
	FlashApply     time.Duration
	FlashAggregate int
	FlashAtomic    int
}

// RunFig11 measures the three-phase breakdown on the I2-trace setting.
func RunFig11(scale Scale) Fig11Result {
	var out Fig11Result
	{
		w := Build(I2Trace, scale)
		seq := w.InsertThenDelete()
		store := newAPKeepForWorkload(w)
		for _, du := range seq {
			if err := store.Apply(du.Dev, du.Update); err != nil {
				panic(err)
			}
		}
		st := store.Stats()
		out.APKeepMap, out.APKeepApply = st.MapTime, st.ApplyTime
	}
	{
		w := Build(I2Trace, scale)
		_, st := RunFlash(w, w.InsertThenDelete(), bdd.True, w.NumRules(), true)
		out.PerUpdMap, out.PerUpdReduce, out.PerUpdApply = st.MapTime, st.ReduceTime, st.ApplyTime
	}
	{
		w := Build(I2Trace, scale)
		_, st := RunFlash(w, w.InsertThenDelete(), bdd.True, w.NumRules(), false)
		out.FlashMap, out.FlashReduce, out.FlashApply = st.MapTime, st.ReduceTime, st.ApplyTime
		out.FlashAtomic, out.FlashAggregate = st.Atomic, st.Aggregated
	}
	return out
}

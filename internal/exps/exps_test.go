package exps

import (
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/fib"
)

func TestBuildAllSettings(t *testing.T) {
	for _, s := range AllSettings {
		w := Build(s, Tiny)
		if w.NumRules() == 0 {
			t.Errorf("%s: empty workload", s)
		}
		if w.Name != string(s) {
			t.Errorf("%s: workload named %q", s, w.Name)
		}
	}
}

func TestTable3TinyCrossValidates(t *testing.T) {
	for _, s := range []Setting{LNetAPSP, I2Trace} {
		row := RunTable3(s, Tiny, 1, 0)
		if row.DeltaNet.TimedOut || row.APKeep.TimedOut || row.Flash.TimedOut {
			t.Fatalf("%s: unexpected timeout", s)
		}
		// The sequence is insert-then-delete: all systems must end on the
		// single empty-plane class.
		if row.Flash.ECs != 1 || row.APKeep.ECs != 1 || row.DeltaNet.ECs != 1 {
			t.Errorf("%s: final ECs = dn:%d ap:%d fl:%d, want 1 each",
				s, row.DeltaNet.ECs, row.APKeep.ECs, row.Flash.ECs)
		}
		if row.Updates != 2*row.Rules {
			t.Errorf("%s: updates %d, want %d", s, row.Updates, 2*row.Rules)
		}
		if row.Flash.Ops == 0 || row.APKeep.Ops == 0 || row.DeltaNet.Ops == 0 {
			t.Errorf("%s: zero op counts", s)
		}
	}
}

func TestTable3SubspacePartitioned(t *testing.T) {
	row := RunTable3(LNetAPSP, Tiny, 4, 0)
	if row.Subspaces != 4 {
		t.Fatal("subspace count lost")
	}
	// Each of the 4 subspaces ends on 1 class.
	if row.Flash.ECs != 4 {
		t.Errorf("Flash final ECs = %d, want 4 (1 per subspace)", row.Flash.ECs)
	}
	if row.Flash.Time <= 0 {
		t.Error("no time measured")
	}
}

// TestFlashAggregationBeatsPerUpdateOps: the central Fast IMT claim at
// the operation-count level (robust to machine speed): a block update
// needs far fewer predicate operations than per-update processing.
func TestFlashAggregationBeatsPerUpdateOps(t *testing.T) {
	wBlock := Build(LNetECMP, Tiny)
	block, _ := RunFlash(wBlock, wBlock.InsertSequence(), bdd.True, 0, false)
	wPer := Build(LNetECMP, Tiny)
	per, _ := RunFlash(wPer, wPer.InsertSequence(), bdd.True, 0, true)
	if block.Ops*2 >= per.Ops {
		t.Errorf("block ops %d not ≪ per-update ops %d", block.Ops, per.Ops)
	}
}

func TestFig6SmrShapesHold(t *testing.T) {
	r := RunFig6(LNetSMR, Tiny, 30*time.Second)
	// Delta-net* must do orders of magnitude more header-space work on
	// suffix-match rules than Flash does predicate operations.
	if r.DeltaNet.Ops < 10*r.Flash.Ops {
		t.Errorf("Delta-net* ops %d vs Flash ops %d: smr should explode intervals",
			r.DeltaNet.Ops, r.Flash.Ops)
	}
	if r.APKeep.Ops <= r.Flash.Ops {
		t.Errorf("APKeep* ops %d should exceed Flash ops %d", r.APKeep.Ops, r.Flash.Ops)
	}
}

func TestFig7SweepRuns(t *testing.T) {
	pts := RunFig7(I2Trace, Tiny, []float64{0.01, 0.5, 1.0})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Normalized <= 0 {
			t.Errorf("non-positive normalized speed at %v", p.BSTFraction)
		}
	}
}

func TestFig8NoFalsePositives(t *testing.T) {
	r := RunFig8()
	if r.CE2DLoops != 0 {
		t.Fatalf("CE2D reported %d loops on a healthy control plane", r.CE2DLoops)
	}
	if r.PUVTransient == 0 && r.BUVTransient == 0 {
		t.Log("note: this run produced no transient loops for PUV/BUV " +
			"(depends on event interleaving); timeline still produced")
	}
	if len(r.Points) == 0 {
		t.Fatal("empty timeline")
	}
}

func TestFig9EarlyDetectionCommon(t *testing.T) {
	cdf := RunFig9OpenR(12, 99)
	early := cdf.Fraction(Second) // within 1 virtual second
	if early < 0.5 {
		t.Errorf("only %.0f%% of buggy loops detected within 1s (60s baseline)", 100*early)
	}
}

func TestFig10MonotoneInDampening(t *testing.T) {
	few := RunFig10Trace(20, 1, 7).Fraction(Second)
	many := RunFig10Trace(20, 7, 7).Fraction(Second)
	if few < many {
		t.Errorf("early-detection rate should not increase with dampened devices: D=1 %.2f < D=7 %.2f", few, many)
	}
	if few < 0.5 {
		t.Errorf("D=1 early-detection rate %.2f too low", few)
	}
}

func TestFig12DGQFasterThanMT(t *testing.T) {
	// Small scale: at Tiny the product graphs are a handful of nodes and
	// both strategies cost microseconds, so the separation the paper
	// measures does not manifest.
	r := RunFig12(Small)
	if r.Graphs == 0 || len(r.DGQ) == 0 {
		t.Fatal("no samples")
	}
	md, mm := Mean(r.DGQ), Mean(r.MT)
	if md >= mm {
		t.Errorf("DGQ mean %v not faster than MT mean %v", md, mm)
	}
	if q := Quantile(r.MT, 0.99); q < Quantile(r.DGQ, 0.99) {
		t.Errorf("MT p99 %v below DGQ p99 %v", q, Quantile(r.DGQ, 0.99))
	}
}

func TestFig14Bursts(t *testing.T) {
	r := RunFig14(64)
	if r.Burst1 == 0 {
		t.Fatal("inter-domain failure produced no burst")
	}
	if r.Burst2 == 0 {
		t.Fatal("intra-domain recovery produced no burst")
	}
	if len(r.Times) != len(r.Counts) {
		t.Fatal("series misaligned")
	}
}

func TestFig15MatchesPaper(t *testing.T) {
	rows := RunFig15()
	if len(rows) != 5 {
		t.Fatal("want 5 rows")
	}
	if rows[0].Rules != 160 || rows[0].Deltas != 56 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[4].Rules != 1310720 || rows[4].Deltas != 71680 {
		t.Errorf("row 4 = %+v", rows[4])
	}
}

func TestFig11Breakdown(t *testing.T) {
	r := RunFig11(Tiny)
	if r.FlashAtomic == 0 || r.FlashAggregate == 0 {
		t.Fatal("no overwrite counts")
	}
	if r.FlashAggregate >= r.FlashAtomic {
		t.Errorf("aggregation did not reduce overwrites: %d -> %d", r.FlashAtomic, r.FlashAggregate)
	}
	if r.APKeepMap == 0 || r.PerUpdMap == 0 || r.FlashMap == 0 {
		t.Error("missing phase timings")
	}
}

func TestOverheadRuns(t *testing.T) {
	r := RunOverhead(Tiny, 2)
	if r.Nodes == 0 || r.Rules == 0 || r.ECsTotal == 0 || r.MemoryUnits == 0 {
		t.Fatalf("incomplete overhead result: %+v", r)
	}
}

func TestRestrictDesc(t *testing.T) {
	const width = 16
	cases := []struct {
		val  uint64
		plen int
		top  uint64
		ok   bool
	}{
		{0x8000, 4, 1, true},  // /4 inside the upper half
		{0x8000, 4, 0, false}, // disjoint from the lower half
		{0x0000, 4, 0, true},
		{0x0000, 0, 1, true}, // wildcard intersects everything
	}
	for _, c := range cases {
		desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: c.val, Len: c.plen}}
		got, ok := restrictDesc(desc, "dst", c.top, 1, width)
		if ok != c.ok {
			t.Errorf("restrictDesc(%#x/%d, top=%d) ok=%v want %v", c.val, c.plen, c.top, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		// The result must be a ternary constraining both the subspace
		// top bit and the original prefix bits.
		if len(got) != 1 || got[0].Kind != fib.MatchTernary {
			t.Fatalf("restrictDesc result %v", got)
		}
		if got[0].Mask&0x8000 == 0 {
			t.Error("subspace bit not constrained")
		}
	}
	// Rules with no constraint on the field gain the subspace constraint.
	got, ok := restrictDesc(nil, "dst", 1, 1, width)
	if !ok || len(got) != 1 || got[0].Value != 0x8000 || got[0].Mask != 0x8000 {
		t.Errorf("unconstrained rule: %v ok=%v", got, ok)
	}
}

package exps

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bdd"
	"repro/internal/reach"
	"repro/internal/spec"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Fig12Result holds the per-batch verification-time samples for the
// decremental graph query (DGQ) and model traversal (MT) approaches on
// the all-pair ToR-to-ToR reachability check (Figure 12), plus the
// time-vs-progress series of Figure 18.
type Fig12Result struct {
	DGQ, MT []time.Duration
	// Series pairs the number of processed update batches with the
	// verification time at that point (Figure 18).
	SeriesDGQ, SeriesMT []time.Duration
	Graphs              int
}

// Quantile returns the q-quantile (0..1) of a sample set.
func Quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Mean returns the mean of a sample set.
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / time.Duration(len(samples))
}

// RunFig12 checks all-pair ToR-to-ToR reachability on the LNet-apsp
// setting: the rule insertions of each switch form one batch; after each
// batch the verification time of DGQ (incremental synchronize + verdict)
// and MT (full traversal of every graph) is measured.
func RunFig12(scale Scale) Fig12Result {
	w := workload.LNetAPSP(FabricFor(scale))
	g := w.Topo
	tors := g.NodesByRole(topo.RoleTor)

	// Destination-ToR graphs: for each destination, one graph whose
	// sources are all other ToRs ("[role=tor] .* >" per destination).
	type checkState struct {
		dst topo.NodeID
		vg  *reach.VGraph
	}
	expr := spec.MustParse("[role=tor] .* >")
	var dgq []checkState
	var mt []checkState
	for _, dst := range tors {
		srcs := make([]topo.NodeID, 0, len(tors)-1)
		for _, s := range tors {
			if s != dst {
				srcs = append(srcs, s)
			}
		}
		isDest := workload.IsDestFunc(dst)
		dgq = append(dgq, checkState{dst, reach.NewVGraph(g, expr, srcs, isDest)})
		mt = append(mt, checkState{dst, reach.NewVGraph(g, expr, srcs, isDest)})
	}

	// Per-switch batches: each device's next hop for each destination
	// prefix, derived from the workload's rules.
	var out Fig12Result
	out.Graphs = len(dgq)
	for _, b := range w.Blocks {
		dev := topo.NodeID(b.Device)
		// Build this device's per-destination behavior from its block.
		syncs := make([]reach.SyncState, len(tors))
		for _, u := range b.Updates {
			d := u.Rule.Desc[0]
			if d.Len == 0 {
				continue // default drop
			}
			idx := int(d.Value >> uint(w.Layout.FieldBits("dst")-d.Len))
			if nh, ok := u.Rule.Action.NextHop(); ok {
				if nh < topo.NodeID(g.N()) {
					syncs[idx] = reach.SyncState{NextHops: []topo.NodeID{nh}}
				} else {
					syncs[idx] = reach.SyncState{Delivers: true}
				}
			}
		}
		// Both strategies apply the same decremental pruning; the paper
		// measures "the execution time of the verification" after each
		// batch, so synchronization runs outside the timers.
		for i := range dgq {
			if err := dgq[i].vg.Synchronize(dev, syncs[i]); err != nil {
				panic(err)
			}
			if err := mt[i].vg.Synchronize(dev, syncs[i]); err != nil {
				panic(err)
			}
		}
		// DGQ: the decremental structure answers from maintained state
		// (the reachability query of Algorithm 2, O(1) per graph).
		start := time.Now()
		for i := range dgq {
			dgq[i].vg.AcceptReachable()
		}
		d := time.Since(start)
		out.DGQ = append(out.DGQ, d)
		out.SeriesDGQ = append(out.SeriesDGQ, d)

		// MT: full traversal of every verification graph.
		start = time.Now()
		for i := range mt {
			mt[i].vg.AcceptReachableByTraversal()
		}
		d = time.Since(start)
		out.MT = append(out.MT, d)
		out.SeriesMT = append(out.SeriesMT, d)
	}

	// Sanity: both strategies agree on every graph's final answer.
	for i := range dgq {
		vd, vm := dgq[i].vg.AcceptReachable(), mt[i].vg.AcceptReachableByTraversal()
		if vd != vm {
			panic(fmt.Sprintf("exps: DGQ %v != MT %v for dst %d", vd, vm, dgq[i].dst))
		}
		if full, inc := dgq[i].vg.Verdict(), mt[i].vg.VerdictByTraversal(); full != inc {
			panic(fmt.Sprintf("exps: verdicts disagree for dst %d: %v vs %v", dgq[i].dst, full, inc))
		}
	}
	return out
}

// Fig15Row is one row of the Figure 15 pod-add table.
type Fig15Row struct {
	K, P          int
	Rules, Deltas int
}

// RunFig15 reproduces the Appendix A pod-add table.
func RunFig15() []Fig15Row {
	params := []struct{ k, p int }{{4, 2}, {8, 4}, {16, 8}, {32, 16}, {32, 32}}
	out := make([]Fig15Row, 0, len(params))
	for _, c := range params {
		r, d := workload.PodAddCounts(c.k, c.p)
		out = append(out, Fig15Row{K: c.k, P: c.p, Rules: r, Deltas: d})
	}
	return out
}

// Fig14Point is a cumulative update count at a virtual time.
type Fig14Point struct {
	At      time.Duration
	Updates int
}

// OverheadResult summarizes §5.5's computational-overhead accounting for
// a given fabric scale.
type OverheadResult struct {
	Nodes       int
	Rules       int
	Subspaces   int
	ECsTotal    int
	MemoryUnits int // BDD + PAT nodes across subspaces
	BuildTime   time.Duration
}

// RunOverhead measures the resources of a subspace-partitioned Flash
// verification of the LNet-ecmp setting (§5.5).
func RunOverhead(scale Scale, subspaces int) OverheadResult {
	w := workload.LNetECMP(FabricFor(scale))
	seq := w.InsertSequence()
	var out OverheadResult
	out.Nodes = w.Topo.N()
	out.Rules = w.NumRules()
	out.Subspaces = subspaces

	start := time.Now()
	res := runPartitioned(w, subspaces, "Flash", func(universe bdd.Ref) SystemResult {
		r, _ := RunFlash(w, seq, universe, 0, false)
		return r
	})
	out.BuildTime = time.Since(start)
	out.ECsTotal = res.ECs
	out.MemoryUnits = res.Units
	return out
}

package deltanet

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fib"
	"repro/internal/hs"
)

var lay8 = hs.NewLayout(hs.Field{Name: "dst", Bits: 8})
var laySD = hs.NewLayout(hs.Field{Name: "src", Bits: 4}, hs.Field{Name: "dst", Bits: 4})

func prefixRule(id int64, pri int32, val uint64, plen int, a fib.Action) fib.Rule {
	return fib.Rule{ID: id, Pri: pri, Action: a,
		Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: val, Len: plen}}}
}

func TestIntervalsForPrefix(t *testing.T) {
	ivs, err := IntervalsFor(lay8, fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0xA0, Len: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0] != (Interval{0xA0, 0xB0}) {
		t.Errorf("prefix intervals = %v, want [{0xA0,0xB0}]", ivs)
	}
	// Wildcard
	ivs, err = IntervalsFor(lay8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0] != (Interval{0, 256}) {
		t.Errorf("wildcard intervals = %v", ivs)
	}
}

func TestIntervalsForSuffixExplodes(t *testing.T) {
	// Suffix match on the low 2 bits of an 8-bit field: 64 singleton runs.
	ivs, err := IntervalsFor(lay8, fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary, Value: 0b01, Mask: 0b11}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 64 {
		t.Errorf("suffix /2 on 8 bits gave %d intervals, want 64", len(ivs))
	}
	for _, iv := range ivs {
		if iv.Hi-iv.Lo != 1 || iv.Lo&0b11 != 0b01 {
			t.Fatalf("bad suffix interval %v", iv)
		}
	}
}

// TestIntervalsForExplosionCapTyped pins the previously untested
// maxIntervals (1<<22) cap path and its error identity: a rule whose
// multi-field expansion crosses the cap must fail with
// ErrIntervalExplosion so the hybrid cutover guard can tell "non-interval
// rule, switch representation" apart from a malformed match. The trigger
// is cheap — a wide leading wildcard field times a constrained trailing
// field explodes one interval per leading value, and the cap fires
// before any per-value allocation happens.
func TestIntervalsForExplosionCapTyped(t *testing.T) {
	layWide := hs.NewLayout(hs.Field{Name: "a", Bits: 24}, hs.Field{Name: "b", Bits: 8})
	_, err := IntervalsFor(layWide, fib.MatchDesc{
		{Field: "b", Kind: fib.MatchPrefix, Value: 0x80, Len: 1},
	})
	if err == nil {
		t.Fatal("2^24 interval expansion must exceed the 1<<22 cap")
	}
	if !errors.Is(err, ErrIntervalExplosion) {
		t.Fatalf("cap error = %v, want errors.Is(err, ErrIntervalExplosion)", err)
	}

	// The ternary free-bits cap reports the same sentinel: both paths
	// mean "valid rule, wrong representation".
	layT := hs.NewLayout(hs.Field{Name: "dst", Bits: 32})
	// Mask pins only bit 0: the 31 wildcard bits above it are all "free"
	// run-doubling positions, past the 24-bit cap.
	_, err = IntervalsFor(layT, fib.MatchDesc{
		{Field: "dst", Kind: fib.MatchTernary, Value: 1, Mask: 1},
	})
	if err == nil {
		t.Fatal("2^31 ternary expansion must exceed the free-bits cap")
	}
	if !errors.Is(err, ErrIntervalExplosion) {
		t.Fatalf("ternary cap error = %v, want errors.Is(err, ErrIntervalExplosion)", err)
	}

	// A genuinely malformed match is NOT an explosion: the guard must be
	// able to reject it instead of silently switching representation.
	_, err = IntervalsFor(lay8, fib.MatchDesc{
		{Field: "dst", Kind: fib.MatchPrefix, Value: 0, Len: 99},
	})
	if err == nil || errors.Is(err, ErrIntervalExplosion) {
		t.Fatalf("malformed prefix error = %v, must be non-nil and not ErrIntervalExplosion", err)
	}
}

func TestIntervalsForMultiField(t *testing.T) {
	// src=0b01xx, dst=0b10xx on 4+4 bits: 4 src values × one dst run.
	ivs, err := IntervalsFor(laySD, fib.MatchDesc{
		{Field: "src", Kind: fib.MatchPrefix, Value: 0b0100, Len: 2},
		{Field: "dst", Kind: fib.MatchPrefix, Value: 0b1000, Len: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 4 {
		t.Fatalf("rectangle gave %d intervals, want 4", len(ivs))
	}
	// Each interval: src value v in 4..7, dst 8..11 → [v*16+8, v*16+12).
	for i, iv := range ivs {
		v := uint64(4 + i)
		if iv.Lo != v*16+8 || iv.Hi != v*16+12 {
			t.Errorf("interval %d = %v", i, iv)
		}
	}
	// src-wildcard rectangle with full dst: single interval.
	ivs, err = IntervalsFor(laySD, fib.MatchDesc{
		{Field: "src", Kind: fib.MatchPrefix, Value: 0b0100, Len: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0] != (Interval{64, 128}) {
		t.Errorf("contiguous rectangle = %v", ivs)
	}
}

// intervalsCoverage brute-force checks IntervalsFor against the BDD
// compilation of the same descriptor.
func TestIntervalsForMatchesBDD(t *testing.T) {
	s := hs.NewSpace(laySD)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		var d fib.MatchDesc
		if rng.Intn(2) == 0 {
			d = append(d, fib.FieldMatch{Field: "src", Kind: fib.MatchPrefix,
				Value: uint64(rng.Intn(16)), Len: rng.Intn(5)})
		}
		switch rng.Intn(3) {
		case 0:
			d = append(d, fib.FieldMatch{Field: "dst", Kind: fib.MatchPrefix,
				Value: uint64(rng.Intn(16)), Len: rng.Intn(5)})
		case 1:
			d = append(d, fib.FieldMatch{Field: "dst", Kind: fib.MatchTernary,
				Value: uint64(rng.Intn(16)), Mask: uint64(rng.Intn(16))})
		}
		ivs, err := IntervalsFor(laySD, d)
		if err != nil {
			t.Fatal(err)
		}
		pred := s.Compile(d)
		covered := func(x uint64) bool {
			for _, iv := range ivs {
				if x >= iv.Lo && x < iv.Hi {
					return true
				}
			}
			return false
		}
		for x := uint64(0); x < 256; x++ {
			h := hs.Header{x >> 4, x & 0xF}
			if covered(x) != s.Contains(pred, h) {
				t.Fatalf("trial %d: intervals and BDD disagree at %#x (desc %v)", trial, x, d)
			}
		}
	}
}

func TestInsertDeleteLookup(t *testing.T) {
	v := New(lay8)
	d := fib.DeviceID(0)
	if err := v.Insert(d, prefixRule(1, 0, 0, 0, fib.Drop)); err != nil {
		t.Fatal(err)
	}
	if err := v.Insert(d, prefixRule(2, 5, 0xA0, 4, fib.Forward(1))); err != nil {
		t.Fatal(err)
	}
	if err := v.Insert(d, prefixRule(3, 7, 0xA8, 6, fib.Forward(2))); err != nil {
		t.Fatal(err)
	}
	if got := v.ActionAt(d, 0xA9); got != fib.Forward(2) {
		t.Errorf("0xA9 → %v, want fwd(2)", got)
	}
	if got := v.ActionAt(d, 0xA0); got != fib.Forward(1) {
		t.Errorf("0xA0 → %v, want fwd(1)", got)
	}
	if got := v.ActionAt(d, 0x00); got != fib.Drop {
		t.Errorf("0x00 → %v, want drop", got)
	}
	if err := v.Delete(d, prefixRule(3, 7, 0xA8, 6, fib.Forward(2))); err != nil {
		t.Fatal(err)
	}
	if got := v.ActionAt(d, 0xA9); got != fib.Forward(1) {
		t.Errorf("after delete 0xA9 → %v, want fwd(1)", got)
	}
	// Errors
	if err := v.Insert(d, prefixRule(1, 0, 0, 0, fib.Drop)); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := v.Delete(d, prefixRule(99, 0, 0, 0, fib.Drop)); err == nil {
		t.Error("missing delete accepted")
	}
}

func TestPriorityTieBreaksLikeTables(t *testing.T) {
	v := New(lay8)
	d := fib.DeviceID(0)
	// Same priority, overlapping, same action (well-behaved): lookup must
	// still be deterministic (lowest ID first).
	a := fib.Forward(3)
	if err := v.Insert(d, prefixRule(10, 4, 0x00, 1, a)); err != nil {
		t.Fatal(err)
	}
	if err := v.Insert(d, prefixRule(11, 4, 0x00, 2, a)); err != nil {
		t.Fatal(err)
	}
	if got := v.ActionAt(d, 0x01); got != a {
		t.Errorf("tie lookup = %v, want %v", got, a)
	}
}

func TestAtomSplitCopiesOccupancy(t *testing.T) {
	v := New(lay8)
	d := fib.DeviceID(0)
	if err := v.Insert(d, prefixRule(1, 0, 0, 0, fib.Drop)); err != nil {
		t.Fatal(err)
	}
	if v.NumAtoms() != 1 {
		t.Fatalf("atoms = %d, want 1", v.NumAtoms())
	}
	if err := v.Insert(d, prefixRule(2, 5, 0x80, 1, fib.Forward(1))); err != nil {
		t.Fatal(err)
	}
	if v.NumAtoms() != 2 {
		t.Fatalf("atoms = %d, want 2", v.NumAtoms())
	}
	// The wildcard rule must still cover both atoms.
	if got := v.ActionAt(d, 0x00); got != fib.Drop {
		t.Errorf("low atom lost wildcard: %v", got)
	}
	if got := v.ActionAt(d, 0xFF); got != fib.Forward(1) {
		t.Errorf("high atom = %v", got)
	}
	if v.PairCount() != 3 { // wildcard × 2 atoms + rule2 × 1 atom
		t.Errorf("PairCount = %d, want 3", v.PairCount())
	}
}

func TestECCount(t *testing.T) {
	v := New(lay8)
	for d := fib.DeviceID(0); d < 3; d++ {
		if err := v.Insert(d, prefixRule(1, 0, 0, 0, fib.Drop)); err != nil {
			t.Fatal(err)
		}
	}
	if v.ECCount() != 1 {
		t.Fatalf("uniform plane has %d ECs, want 1", v.ECCount())
	}
	if err := v.Insert(0, prefixRule(2, 5, 0xA0, 4, fib.Forward(1))); err != nil {
		t.Fatal(err)
	}
	if v.ECCount() != 2 {
		t.Errorf("ECs = %d, want 2", v.ECCount())
	}
}

// TestCrossValidationAgainstTables randomly drives Delta-net* and plain
// fib.Tables with the same rules and compares per-header behavior.
func TestCrossValidationAgainstTables(t *testing.T) {
	s := hs.NewSpace(lay8)
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		v := New(lay8)
		tables := map[fib.DeviceID]*fib.Table{}
		nextID := int64(1)
		type live struct {
			dev fib.DeviceID
			r   fib.Rule
		}
		var rules []live
		for step := 0; step < 120; step++ {
			dev := fib.DeviceID(rng.Intn(3))
			if tables[dev] == nil {
				tables[dev] = fib.NewTable()
			}
			if rng.Intn(4) > 0 || len(rules) == 0 {
				var desc fib.MatchDesc
				if rng.Intn(4) == 0 {
					desc = fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary,
						Value: uint64(rng.Intn(256)), Mask: uint64(rng.Intn(8))}}
				} else {
					desc = fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix,
						Value: uint64(rng.Intn(256)), Len: rng.Intn(9)}}
				}
				r := fib.Rule{ID: nextID, Pri: int32(rng.Intn(8)), Desc: desc,
					Match:  s.Compile(desc),
					Action: fib.Forward(fib.DeviceID(rng.Intn(5)))}
				nextID++
				if err := v.Insert(dev, r); err != nil {
					t.Fatal(err)
				}
				tables[dev].Insert(r)
				rules = append(rules, live{dev, r})
			} else {
				i := rng.Intn(len(rules))
				l := rules[i]
				rules = append(rules[:i], rules[i+1:]...)
				if err := v.Delete(l.dev, l.r); err != nil {
					t.Fatal(err)
				}
				if !tables[l.dev].Delete(l.r.Pri, l.r.ID) {
					t.Fatal("table delete failed")
				}
			}
		}
		for x := uint64(0); x < 256; x++ {
			asg := s.Assignment(hs.Header{x})
			for dev, tb := range tables {
				want := tb.Lookup(s.E, asg)
				if got := v.ActionAt(dev, x); got != want {
					t.Fatalf("trial %d: dev %d header %#x: deltanet %v, table %v",
						trial, dev, x, got, want)
				}
			}
		}
	}
}

func TestOpsCountGrowsWithNonPrefix(t *testing.T) {
	// The whole point of the baseline: suffix rules must cost far more
	// interval operations than prefix rules of similar coverage.
	vPrefix := New(lay8)
	vSuffix := New(lay8)
	d := fib.DeviceID(0)
	if err := vPrefix.Insert(d, prefixRule(1, 1, 0xA0, 4, fib.Drop)); err != nil {
		t.Fatal(err)
	}
	suffix := fib.Rule{ID: 1, Pri: 1, Action: fib.Drop,
		Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary, Value: 0x05, Mask: 0x0F}}}
	if err := vSuffix.Insert(d, suffix); err != nil {
		t.Fatal(err)
	}
	if vSuffix.Ops() <= 4*vPrefix.Ops() {
		t.Errorf("suffix ops (%d) should dwarf prefix ops (%d)", vSuffix.Ops(), vPrefix.Ops())
	}
}

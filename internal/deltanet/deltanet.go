// Package deltanet implements the Delta-net* baseline: our reimplementation
// of Delta-net (Horn, Kheradmand, Prasad — NSDI'17) following its
// pseudocode, extended exactly as §5.1 of the Flash paper describes:
// "Given that Delta-net represents each longest-prefix match as an
// interval, we directly extend it to handle multi-field match and generic
// ternary match by representing each match as multiple intervals."
//
// The header space is the integer line [0, 2^W) obtained by concatenating
// the layout's fields; the line is partitioned into atoms delimited by the
// boundaries of every installed rule interval. Each (device, atom) pair
// carries the rules covering the atom ordered by priority, so the atom's
// action is the first rule's. A prefix match contributes a single
// interval; an M-field rectangle or a ternary/suffix match explodes into
// many intervals — the representational weakness the LNet-ecmp and
// LNet-smr settings expose in Table 3 and Figure 6.
//
// The package counts one "predicate operation" per (device, atom) rule
// insertion, removal, or atom-split copy: the unit of header-space work,
// playing the role BDD ∧/∨/¬ calls play for Flash and APKeep*.
package deltanet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fib"
	"repro/internal/hs"
)

// Interval is a half-open range [Lo, Hi) on the concatenated header line.
type Interval struct {
	Lo, Hi uint64
}

// ErrIntervalExplosion reports that a match descriptor is valid but
// expands past the interval budget on the concatenated header line — the
// representational weakness of interval atoms on ternary and multi-field
// rules. It is a sentinel (test with errors.Is) so callers that pick a
// predicate representation per rule — the hybrid engine's cutover guard —
// can distinguish "this rule is non-interval, switch to BDD" from a real
// malformed-match error, which must still fail the update.
var ErrIntervalExplosion = errors.New("deltanet: interval explosion")

// IntervalsFor converts a symbolic match descriptor into the set of
// intervals it covers on the concatenated header line of the layout.
// Fields appear in layout order, earlier fields in higher-order bits
// (matching package hs variable order). A nil constraint on a field is a
// full wildcard.
func IntervalsFor(layout *hs.Layout, d fib.MatchDesc) ([]Interval, error) {
	byField := make(map[string]fib.FieldMatch, len(d))
	for _, f := range d {
		if _, dup := byField[f.Field]; dup {
			return nil, fmt.Errorf("deltanet: duplicate constraint on field %q", f.Field)
		}
		byField[f.Field] = f
	}
	// Start with the whole (zero-width) line and refine field by field,
	// most significant first. Runs are inclusive value ranges on the
	// accumulated width. Appending a field turns each accumulated run
	// [lo,hi] × field run [rlo,rhi] into either one contiguous run (when
	// the field run is the full field range) or one run per value of the
	// accumulated run — the multi-field interval explosion Delta-net*
	// suffers on non-prefix rules.
	const maxIntervals = 1 << 22
	ivs := []Interval{{0, 0}}
	for _, fd := range layout.Fields() {
		w := fd.Bits
		fm := maxVal(w)
		constraint, present := byField[fd.Name]
		runs, err := fieldRuns(constraint, w, present)
		if err != nil {
			return nil, fmt.Errorf("deltanet: field %q: %w", fd.Name, err)
		}
		var next []Interval
		for _, iv := range ivs {
			for _, r := range runs {
				if r.Lo == 0 && r.Hi == fm {
					next = append(next, Interval{iv.Lo << uint(w), iv.Hi<<uint(w) + fm})
					continue
				}
				if span := iv.Hi - iv.Lo + 1; uint64(len(next))+span > maxIntervals {
					return nil, fmt.Errorf("deltanet: rule expands past %d intervals: %w", maxIntervals, ErrIntervalExplosion)
				}
				for v := iv.Lo; v <= iv.Hi; v++ {
					next = append(next, Interval{v<<uint(w) + r.Lo, v<<uint(w) + r.Hi})
				}
			}
		}
		ivs = next
	}
	// Convert inclusive value runs to half-open intervals and merge
	// adjacent runs.
	out := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, Interval{iv.Lo, iv.Hi + 1})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:0]
	for _, iv := range out {
		if n := len(merged); n > 0 && merged[n-1].Hi >= iv.Lo {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged, nil
}

// fieldRuns enumerates the inclusive value runs a single-field constraint
// permits. present=false means wildcard.
func fieldRuns(f fib.FieldMatch, width int, present bool) ([]Interval, error) {
	full := Interval{0, maxVal(width)}
	if !present {
		return []Interval{full}, nil
	}
	switch f.Kind {
	case fib.MatchPrefix:
		if f.Len < 0 || f.Len > width {
			return nil, fmt.Errorf("prefix length %d out of range", f.Len)
		}
		if f.Len == 0 {
			return []Interval{full}, nil
		}
		span := uint64(1) << uint(width-f.Len)
		top := f.Value >> uint(width-f.Len)
		lo := top << uint(width-f.Len)
		return []Interval{{lo, lo + span - 1}}, nil
	case fib.MatchTernary:
		// Enumerate the runs of values v with v & Mask == Value & Mask.
		// Contiguous low wildcard bits form runs; every other wildcard
		// bit doubles the run count.
		mask := f.Mask & maskOf(width)
		val := f.Value & mask
		// Trailing wildcard bits give run length.
		runLen := uint64(1)
		bit := 0
		for ; bit < width && mask&(1<<uint(bit)) == 0; bit++ {
			runLen <<= 1
		}
		// Remaining wildcard positions (above `bit`) each double the count.
		var freeBits []int
		for i := bit; i < width; i++ {
			if mask&(1<<uint(i)) == 0 {
				freeBits = append(freeBits, i)
			}
		}
		if len(freeBits) > 24 {
			return nil, fmt.Errorf("ternary expansion of 2^%d intervals is too large: %w", len(freeBits), ErrIntervalExplosion)
		}
		n := 1 << uint(len(freeBits))
		runs := make([]Interval, 0, n)
		for m := 0; m < n; m++ {
			v := val
			for i, fb := range freeBits {
				if m&(1<<uint(i)) != 0 {
					v |= 1 << uint(fb)
				}
			}
			runs = append(runs, Interval{v, v + runLen - 1})
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Lo < runs[j].Lo })
		return runs, nil
	default:
		return nil, fmt.Errorf("unknown match kind %d", f.Kind)
	}
}

func maxVal(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

func maskOf(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// ruleEntry is a rule occupying atoms on one device.
type ruleEntry struct {
	id     int64
	pri    int32
	action fib.Action
}

func (r ruleEntry) less(o ruleEntry) bool {
	if r.pri != o.pri {
		return r.pri > o.pri
	}
	return r.id < o.id
}

// Verifier is a Delta-net* instance over a header line of the layout's
// total width.
type Verifier struct {
	layout *hs.Layout
	width  int
	limit  uint64

	// boundaries is the sorted list of atom left edges; boundaries[0]==0.
	// Atom i spans [boundaries[i], boundaries[i+1]) (last atom ends at
	// limit).
	boundaries []uint64
	// occupancy[dev][atom] is the priority-ordered rule list.
	occupancy map[fib.DeviceID][][]ruleEntry
	// intervals remembers each installed rule's atoms' source intervals
	// for deletion. Keyed by (dev, rule id).
	intervals map[devRule][]Interval

	ops       uint64
	pairs     int
	peakPairs int
}

type devRule struct {
	dev fib.DeviceID
	id  int64
}

// New creates a Delta-net* verifier for the layout's concatenated line.
func New(layout *hs.Layout) *Verifier {
	w := layout.TotalBits()
	if w > 63 {
		panic("deltanet: concatenated header line wider than 63 bits")
	}
	return &Verifier{
		layout:     layout,
		width:      w,
		limit:      uint64(1) << uint(w),
		boundaries: []uint64{0},
		occupancy:  make(map[fib.DeviceID][][]ruleEntry),
		intervals:  make(map[devRule][]Interval),
	}
}

// Ops reports the cumulative header-space operation count (the package's
// predicate-operation equivalent).
func (v *Verifier) Ops() uint64 { return v.ops }

// NumAtoms reports the current number of atoms.
func (v *Verifier) NumAtoms() int { return len(v.boundaries) }

// PairCount reports the current number of stored (device, atom, rule)
// entries.
func (v *Verifier) PairCount() int { return v.pairs }

// PeakPairCount reports the high-water mark of stored entries —
// Delta-net*'s memory proxy.
func (v *Verifier) PeakPairCount() int { return v.peakPairs }

func (v *Verifier) addPairs(n int) {
	v.pairs += n
	if v.pairs > v.peakPairs {
		v.peakPairs = v.pairs
	}
}

// atomIndex returns the index of the atom whose range contains x.
func (v *Verifier) atomIndex(x uint64) int {
	return sort.Search(len(v.boundaries), func(i int) bool { return v.boundaries[i] > x }) - 1
}

// ensureBoundary splits the atom containing x so that x becomes an atom
// edge. Splitting copies every device's occupancy of the split atom — the
// cost Delta-net pays on new boundaries.
func (v *Verifier) ensureBoundary(x uint64) {
	if x == 0 || x >= v.limit {
		return
	}
	i := v.atomIndex(x)
	if v.boundaries[i] == x {
		return
	}
	// Insert boundary after i.
	v.boundaries = append(v.boundaries, 0)
	copy(v.boundaries[i+2:], v.boundaries[i+1:])
	v.boundaries[i+1] = x
	for dev, atoms := range v.occupancy {
		atoms = append(atoms, nil)
		copy(atoms[i+2:], atoms[i+1:])
		atoms[i+1] = append([]ruleEntry(nil), atoms[i]...)
		v.occupancy[dev] = atoms
		v.ops += uint64(len(atoms[i])) // copy cost
		v.addPairs(len(atoms[i]))
	}
}

// deviceAtoms returns the device's per-atom occupancy, creating it at the
// current atom count on first use. ensureBoundary keeps every existing
// device in sync with splits, so an existing slice is always full-length.
func (v *Verifier) deviceAtoms(dev fib.DeviceID) [][]ruleEntry {
	atoms, ok := v.occupancy[dev]
	if !ok {
		atoms = make([][]ruleEntry, len(v.boundaries))
		v.occupancy[dev] = atoms
	}
	return atoms
}

// Insert installs a rule on a device. The rule must carry a symbolic
// descriptor (Desc); opaque rules are not representable as intervals.
func (v *Verifier) Insert(dev fib.DeviceID, r fib.Rule) error {
	key := devRule{dev, r.ID}
	if _, dup := v.intervals[key]; dup {
		return fmt.Errorf("deltanet: duplicate rule %d on device %d", r.ID, dev)
	}
	ivs, err := IntervalsFor(v.layout, r.Desc)
	if err != nil {
		return err
	}
	for _, iv := range ivs {
		v.ensureBoundary(iv.Lo)
		v.ensureBoundary(iv.Hi)
	}
	atoms := v.deviceAtoms(dev)
	entry := ruleEntry{id: r.ID, pri: r.Pri, action: r.Action}
	for _, iv := range ivs {
		for i := v.atomIndex(iv.Lo); i < len(v.boundaries) && v.boundaries[i] < iv.Hi; i++ {
			atoms[i] = insertSorted(atoms[i], entry)
			v.ops++
			v.addPairs(1)
		}
	}
	v.intervals[key] = ivs
	return nil
}

// Delete removes a rule previously installed with Insert.
func (v *Verifier) Delete(dev fib.DeviceID, r fib.Rule) error {
	key := devRule{dev, r.ID}
	ivs, ok := v.intervals[key]
	if !ok {
		return fmt.Errorf("deltanet: delete of missing rule %d on device %d", r.ID, dev)
	}
	delete(v.intervals, key)
	atoms := v.deviceAtoms(dev)
	for _, iv := range ivs {
		for i := v.atomIndex(iv.Lo); i < len(v.boundaries) && v.boundaries[i] < iv.Hi; i++ {
			atoms[i] = removeByID(atoms[i], r.ID)
			v.ops++
			v.pairs--
		}
	}
	return nil
}

// Apply processes one native update.
func (v *Verifier) Apply(dev fib.DeviceID, u fib.Update) error {
	if u.Op == fib.Insert {
		return v.Insert(dev, u.Rule)
	}
	return v.Delete(dev, u.Rule)
}

func insertSorted(rules []ruleEntry, e ruleEntry) []ruleEntry {
	i := sort.Search(len(rules), func(i int) bool { return !rules[i].less(e) })
	rules = append(rules, ruleEntry{})
	copy(rules[i+1:], rules[i:])
	rules[i] = e
	return rules
}

func removeByID(rules []ruleEntry, id int64) []ruleEntry {
	for i, r := range rules {
		if r.id == id {
			return append(rules[:i], rules[i+1:]...)
		}
	}
	return rules
}

// ActionAt returns the action device dev applies to the header point x
// (the highest-priority rule covering x's atom).
func (v *Verifier) ActionAt(dev fib.DeviceID, x uint64) fib.Action {
	atoms, ok := v.occupancy[dev]
	if !ok {
		return fib.None
	}
	i := v.atomIndex(x)
	if i >= len(atoms) || len(atoms[i]) == 0 {
		return fib.None
	}
	return atoms[i][0].action
}

// ECCount groups atoms by their network-wide action vector and returns
// the number of distinct behaviors — Delta-net*'s equivalence-class view,
// used to cross-check against the BDD-based models.
func (v *Verifier) ECCount() int {
	devs := make([]fib.DeviceID, 0, len(v.occupancy))
	for d := range v.occupancy {
		devs = append(devs, d)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	type void struct{}
	seen := make(map[string]void)
	buf := make([]byte, 0, 8*len(devs))
	for i := range v.boundaries {
		buf = buf[:0]
		for _, d := range devs {
			a := fib.None
			if atoms := v.occupancy[d]; i < len(atoms) && len(atoms[i]) > 0 {
				a = atoms[i][0].action
			}
			buf = append(buf, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
		}
		seen[string(buf)] = void{}
	}
	return len(seen)
}

package deltanet

import (
	"testing"

	"repro/internal/fib"
)

// The representational asymmetry Table 3 exposes: prefix rules are one
// interval each; suffix rules explode. Compare ns/op across the two.

func BenchmarkInsertPrefixRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		v := New(lay8)
		b.StartTimer()
		for k := 0; k < 64; k++ {
			r := prefixRule(int64(k+1), int32(k%7), uint64(k*4)&0xFF, 4+k%4, fib.Drop)
			if err := v.Insert(fib.DeviceID(k%4), r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkInsertSuffixRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		v := New(lay8)
		b.StartTimer()
		for k := 0; k < 64; k++ {
			r := fib.Rule{ID: int64(k + 1), Pri: int32(k % 7), Action: fib.Drop,
				Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary,
					Value: uint64(k % 8), Mask: 0x07}}}
			if err := v.Insert(fib.DeviceID(k%4), r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package apkeep

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/pat"
)

func newRig() (*hs.Space, *pat.Store, *Verifier) {
	s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	ps := pat.NewStore()
	return s, ps, New(s.E, ps, bdd.True, "dst", 8)
}

func prefixRule(s *hs.Space, id int64, pri int32, val uint64, plen int, a fib.Action) fib.Rule {
	desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: val, Len: plen}}
	return fib.Rule{ID: id, Pri: pri, Action: a, Desc: desc, Match: s.Compile(desc)}
}

func TestInsertDeleteBehavior(t *testing.T) {
	s, ps, v := newRig()
	d := fib.DeviceID(0)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(v.Apply(d, fib.Update{Op: fib.Insert, Rule: prefixRule(s, 1, 0, 0, 0, fib.Drop)}))
	must(v.Apply(d, fib.Update{Op: fib.Insert, Rule: prefixRule(s, 2, 5, 0xA0, 4, fib.Forward(1))}))
	must(v.Apply(d, fib.Update{Op: fib.Insert, Rule: prefixRule(s, 3, 7, 0xA8, 6, fib.Forward(2))}))
	if err := v.Model().Validate(v.E); err != nil {
		t.Fatal(err)
	}
	check := func(h uint64, want fib.Action) {
		t.Helper()
		vec, ok := v.Model().Lookup(v.E, s.Assignment(hs.Header{h}))
		if !ok {
			t.Fatalf("header %#x uncovered", h)
		}
		if got := ps.Get(vec, d); got != want {
			t.Errorf("header %#x → %v, want %v", h, got, want)
		}
	}
	check(0xA9, fib.Forward(2))
	check(0xA0, fib.Forward(1))
	check(0x00, fib.Drop)
	must(v.Apply(d, fib.Update{Op: fib.Delete, Rule: prefixRule(s, 3, 7, 0xA8, 6, fib.Forward(2))}))
	if err := v.Model().Validate(v.E); err != nil {
		t.Fatal(err)
	}
	check(0xA9, fib.Forward(1))
	// Deleting the default exposes uncovered space → cleared coordinate.
	must(v.Apply(d, fib.Update{Op: fib.Delete, Rule: prefixRule(s, 1, 0, 0, 0, fib.Drop)}))
	if err := v.Model().Validate(v.E); err != nil {
		t.Fatal(err)
	}
	vec, _ := v.Model().Lookup(v.E, s.Assignment(hs.Header{0x00}))
	if got := ps.Get(vec, d); got != fib.None {
		t.Errorf("uncovered header has action %v, want none", got)
	}
}

func TestErrors(t *testing.T) {
	s, _, v := newRig()
	d := fib.DeviceID(0)
	r := prefixRule(s, 1, 1, 0, 0, fib.Drop)
	if err := v.Apply(d, fib.Update{Op: fib.Insert, Rule: r}); err != nil {
		t.Fatal(err)
	}
	if err := v.Apply(d, fib.Update{Op: fib.Insert, Rule: r}); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := v.Apply(d, fib.Update{Op: fib.Delete, Rule: prefixRule(s, 9, 1, 0, 0, fib.Drop)}); err == nil {
		t.Error("missing delete accepted")
	}
}

// TestAgreesWithFastIMT drives APKeep* and the Fast IMT transformer with
// identical random update sequences and requires identical inverse models.
func TestAgreesWithFastIMT(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
		ps := pat.NewStore()
		ap := New(s.E, ps, bdd.True, "dst", 8)
		tr := imt.NewTransformer(s.E, ps, bdd.True)

		nextID := int64(1)
		type live struct {
			dev fib.DeviceID
			r   fib.Rule
		}
		var rules []live
		// Every table needs a permanent lowest-priority default rule
		// (footnote 4 of the paper; Algorithm 1's merge relies on it).
		for dev := fib.DeviceID(0); dev < 4; dev++ {
			def := prefixRule(s, nextID, -1, 0, 0, fib.Drop)
			nextID++
			if err := ap.Apply(dev, fib.Update{Op: fib.Insert, Rule: def}); err != nil {
				t.Fatal(err)
			}
			if err := tr.ApplyBlock([]fib.Block{{Device: dev, Updates: []fib.Update{{Op: fib.Insert, Rule: def}}}}); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; step < 150; step++ {
			dev := fib.DeviceID(rng.Intn(4))
			var u fib.Update
			if rng.Intn(4) > 0 || len(rules) == 0 {
				var desc fib.MatchDesc
				if rng.Intn(5) == 0 {
					desc = fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary,
						Value: uint64(rng.Intn(256)), Mask: uint64(rng.Intn(16))}}
				} else {
					desc = fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix,
						Value: uint64(rng.Intn(256)), Len: rng.Intn(9)}}
				}
				r := fib.Rule{ID: nextID, Pri: int32(rng.Intn(8)), Desc: desc,
					Match: s.Compile(desc), Action: fib.Forward(fib.DeviceID(rng.Intn(6)))}
				nextID++
				u = fib.Update{Op: fib.Insert, Rule: r}
				rules = append(rules, live{dev, r})
			} else {
				i := rng.Intn(len(rules))
				l := rules[i]
				rules = append(rules[:i], rules[i+1:]...)
				dev = l.dev
				u = fib.Update{Op: fib.Delete, Rule: l.r}
			}
			if err := ap.Apply(dev, u); err != nil {
				t.Fatal(err)
			}
			if err := tr.ApplyBlock([]fib.Block{{Device: dev, Updates: []fib.Update{u}}}); err != nil {
				t.Fatal(err)
			}
		}
		am, fm := ap.Model(), tr.Model()
		if err := am.Validate(s.E); err != nil {
			t.Fatalf("trial %d: apkeep model invalid: %v", trial, err)
		}
		if am.Len() != fm.Len() {
			t.Fatalf("trial %d: apkeep %d classes, imt %d", trial, am.Len(), fm.Len())
		}
		for vec, p := range fm.ECs {
			if am.ECs[vec] != p {
				t.Fatalf("trial %d: class predicate mismatch for %s", trial, ps.String(vec))
			}
		}
	}
}

func TestStats(t *testing.T) {
	s, _, v := newRig()
	d := fib.DeviceID(0)
	if err := v.Apply(d, fib.Update{Op: fib.Insert, Rule: prefixRule(s, 1, 0, 0, 0, fib.Drop)}); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Updates != 1 || st.Total() <= 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
	v.ResetStats()
	if v.Stats().Updates != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestApplyBlockConvenience(t *testing.T) {
	s, _, v := newRig()
	err := v.ApplyBlock([]fib.Block{
		{Device: 0, Updates: []fib.Update{
			{Op: fib.Insert, Rule: prefixRule(s, 1, 0, 0, 0, fib.Drop)},
			{Op: fib.Insert, Rule: prefixRule(s, 2, 3, 0x40, 2, fib.Forward(1))},
		}},
		{Device: 1, Updates: []fib.Update{
			{Op: fib.Insert, Rule: prefixRule(s, 3, 0, 0, 0, fib.Drop)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Model().Len() != 2 {
		t.Errorf("model has %d classes, want 2", v.Model().Len())
	}
	if err := v.Model().Validate(v.E); err != nil {
		t.Fatal(err)
	}
}

// TestLinearScanAgrees: the trie is only a candidate filter — disabling
// it must not change any result (§3.4 ablation correctness).
func TestLinearScanAgrees(t *testing.T) {
	s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	ps := pat.NewStore()
	fast := New(s.E, ps, bdd.True, "dst", 8)
	slow := New(s.E, ps, bdd.True, "dst", 8)
	slow.LinearScan = true
	rng := rand.New(rand.NewSource(777))
	nextID := int64(1)
	for step := 0; step < 120; step++ {
		dev := fib.DeviceID(rng.Intn(3))
		r := prefixRule(s, nextID, int32(rng.Intn(6)), uint64(rng.Intn(256)), rng.Intn(9),
			fib.Forward(fib.DeviceID(rng.Intn(4))))
		nextID++
		for _, v := range []*Verifier{fast, slow} {
			if err := v.Apply(dev, fib.Update{Op: fib.Insert, Rule: r}); err != nil {
				t.Fatal(err)
			}
		}
	}
	fm, sm := fast.Model(), slow.Model()
	if fm.Len() != sm.Len() {
		t.Fatalf("trie %d classes, linear %d", fm.Len(), sm.Len())
	}
	for vec, p := range fm.ECs {
		if sm.ECs[vec] != p {
			t.Fatal("trie and linear-scan models differ")
		}
	}
}

func BenchmarkOverlapLookup(b *testing.B) {
	build := func(linear bool) *Verifier {
		s := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
		v := New(s.E, pat.NewStore(), bdd.True, "dst", 16)
		v.LinearScan = linear
		rng := rand.New(rand.NewSource(5))
		for id := int64(1); id <= 400; id++ {
			desc := fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix,
				Value: uint64(rng.Intn(1 << 16)), Len: 4 + rng.Intn(12)}}
			r := fib.Rule{ID: id, Pri: int32(rng.Intn(8)), Desc: desc,
				Match: s.Compile(desc), Action: fib.Drop}
			if err := v.Apply(0, fib.Update{Op: fib.Insert, Rule: r}); err != nil {
				b.Fatal(err)
			}
		}
		return v
	}
	for _, mode := range []string{"trie", "linear"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			v := build(mode == "linear")
			probe := v.rules[0][200]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.overlapping(0, probe)
			}
		})
	}
}

// Package apkeep implements the APKeep* baseline: our reimplementation of
// APKeep (Zhang et al., NSDI'20) following its pseudocode, as §5.1 of the
// Flash paper describes. APKeep maintains the same equivalence-class
// inverse model as Flash, but processes native rule updates one at a time
// — the special case the Flash paper identifies in §3.1 ("the APKeep work
// is solving the special case where each update has only one rule").
//
// For each update it computes the update's effective-predicate change by
// consulting the overlapping rules on the device (found through a prefix
// trie, APKeep's PPM element structure), and immediately applies a
// single-device overwrite to the EC table. With K updates against tables
// of T rules this costs O(K·T) predicate operations and K cross products,
// versus Fast IMT's O(T+K) operations and one aggregated cross product —
// the gap Figures 6 and 11 measure.
package apkeep

import (
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/imt"
	"repro/internal/pat"
	"repro/internal/trie"
)

// Stats mirrors imt.Stats for the phases APKeep* has: computing the
// per-update overwrite (Map) and applying it (Apply); there is no
// aggregation phase.
type Stats struct {
	MapTime   time.Duration
	ApplyTime time.Duration
	Updates   int
}

// Total is the total model update time.
func (s Stats) Total() time.Duration { return s.MapTime + s.ApplyTime }

// Verifier is one APKeep* instance.
type Verifier struct {
	E     *bdd.Engine
	Store *pat.Store

	primaryField string
	primaryBits  int

	tables map[fib.DeviceID]*fib.Table
	tries  map[fib.DeviceID]*trie.Trie[int64]
	rules  map[fib.DeviceID]map[int64]fib.Rule
	model  *imt.Model
	stats  Stats

	// LinearScan disables the prefix-trie candidate filter and scans the
	// whole table for overlaps — the §3.4 "fast look-up for overlapped
	// rules" ablation.
	LinearScan bool
}

// New creates an APKeep* verifier. primaryField/primaryBits name the
// header field its rule tries index (the destination field in every
// workload of the paper); universe restricts the model to a subspace.
func New(e *bdd.Engine, store *pat.Store, universe bdd.Ref, primaryField string, primaryBits int) *Verifier {
	return &Verifier{
		E:            e,
		Store:        store,
		primaryField: primaryField,
		primaryBits:  primaryBits,
		tables:       make(map[fib.DeviceID]*fib.Table),
		tries:        make(map[fib.DeviceID]*trie.Trie[int64]),
		rules:        make(map[fib.DeviceID]map[int64]fib.Rule),
		model:        imt.NewModel(universe),
	}
}

// Model returns the maintained inverse model.
func (v *Verifier) Model() *imt.Model { return v.model }

// Stats returns the accumulated phase breakdown.
func (v *Verifier) Stats() Stats { return v.stats }

// ResetStats zeroes the phase breakdown.
func (v *Verifier) ResetStats() { v.stats = Stats{} }

// Table returns the device's table, creating state on first use.
func (v *Verifier) Table(dev fib.DeviceID) *fib.Table {
	tb, ok := v.tables[dev]
	if !ok {
		tb = fib.NewTable()
		v.tables[dev] = tb
		v.tries[dev] = trie.New[int64](v.primaryBits)
		v.rules[dev] = make(map[int64]fib.Rule)
	}
	return tb
}

// Apply processes one native update (per-update semantics).
func (v *Verifier) Apply(dev fib.DeviceID, u fib.Update) error {
	v.stats.Updates++
	if u.Op == fib.Insert {
		return v.insert(dev, u.Rule)
	}
	return v.delete(dev, u.Rule)
}

// ApplyBlock processes a block update-by-update (APKeep has no block
// path; this is a convenience for driving both systems with one workload).
func (v *Verifier) ApplyBlock(blocks []fib.Block) error {
	for _, b := range blocks {
		for _, u := range b.Updates {
			if err := v.Apply(b.Device, u); err != nil {
				return err
			}
		}
	}
	return nil
}

// overlapping returns the device's rules whose matches overlap r's,
// using the prefix trie as a candidate filter and exact BDD overlap as
// the final test. r itself (by ID) is excluded.
func (v *Verifier) overlapping(dev fib.DeviceID, r fib.Rule) []fib.Rule {
	if v.LinearScan {
		out := make([]fib.Rule, 0, 8)
		for _, cand := range v.tables[dev].Rules() {
			if cand.ID == r.ID {
				continue
			}
			if v.E.Overlaps(cand.Match, r.Match) {
				out = append(out, cand)
			}
		}
		return out
	}
	val, plen, ok := r.Desc.PrimaryPrefix(v.primaryField)
	if !ok {
		val, plen = 0, 0
	}
	ids := v.tries[dev].Overlapping(val, plen, nil)
	out := make([]fib.Rule, 0, len(ids))
	for _, id := range ids {
		if id == r.ID {
			continue
		}
		cand := v.rules[dev][id]
		if v.E.Overlaps(cand.Match, r.Match) {
			out = append(out, cand)
		}
	}
	return out
}

func (v *Verifier) indexInsert(dev fib.DeviceID, r fib.Rule) {
	val, plen, ok := r.Desc.PrimaryPrefix(v.primaryField)
	if !ok {
		val, plen = 0, 0
	}
	v.tries[dev].Insert(val, plen, r.ID)
	v.rules[dev][r.ID] = r
}

func (v *Verifier) indexDelete(dev fib.DeviceID, r fib.Rule) {
	val, plen, ok := r.Desc.PrimaryPrefix(v.primaryField)
	if !ok {
		val, plen = 0, 0
	}
	v.tries[dev].Delete(val, plen, r.ID)
	delete(v.rules[dev], r.ID)
}

// effective computes r's effective predicate against the device's current
// table: match ∧ ¬(∨ of higher-priority overlapping matches).
func (v *Verifier) effective(dev fib.DeviceID, r fib.Rule) bdd.Ref {
	higher := bdd.False
	for _, o := range v.overlapping(dev, r) {
		if o.Pri > r.Pri || (o.Pri == r.Pri && o.ID < r.ID) {
			higher = v.E.Or(higher, o.Match)
		}
	}
	return v.E.Diff(r.Match, higher)
}

func (v *Verifier) insert(dev fib.DeviceID, r fib.Rule) error {
	tb := v.Table(dev)
	if _, dup := v.rules[dev][r.ID]; dup {
		return fmt.Errorf("apkeep: duplicate rule %d on device %d", r.ID, dev)
	}
	start := time.Now()
	eff := v.effective(dev, r)
	tb.Insert(r)
	v.indexInsert(dev, r)
	v.stats.MapTime += time.Since(start)

	if eff == bdd.False {
		return nil
	}
	start = time.Now()
	v.model.Apply(v.E, v.Store, []imt.Overwrite{
		{Pred: eff, Delta: v.Store.Set(pat.Empty, dev, r.Action)},
	})
	v.stats.ApplyTime += time.Since(start)
	return nil
}

func (v *Verifier) delete(dev fib.DeviceID, r fib.Rule) error {
	v.Table(dev)
	stored, ok := v.rules[dev][r.ID]
	if !ok {
		return fmt.Errorf("apkeep: delete of missing rule %d on device %d", r.ID, dev)
	}
	start := time.Now()
	eff := v.effective(dev, stored)
	// The freed space falls to the lower-priority overlapping rules in
	// priority order.
	lower := make([]fib.Rule, 0, 8)
	for _, o := range v.overlapping(dev, stored) {
		if o.Pri < stored.Pri || (o.Pri == stored.Pri && o.ID > stored.ID) {
			lower = append(lower, o)
		}
	}
	sortRules(lower)
	if !v.tables[dev].Delete(stored.Pri, stored.ID) {
		return fmt.Errorf("apkeep: table/index out of sync for rule %d", r.ID)
	}
	v.indexDelete(dev, stored)

	var ows []imt.Overwrite
	rem := eff
	for _, o := range lower {
		if rem == bdd.False {
			break
		}
		part := v.E.And(rem, o.Match)
		if part == bdd.False {
			continue
		}
		ows = append(ows, imt.Overwrite{Pred: part, Delta: v.Store.Set(pat.Empty, dev, o.Action)})
		rem = v.E.Diff(rem, o.Match)
	}
	v.stats.MapTime += time.Since(start)

	start = time.Now()
	v.model.Apply(v.E, v.Store, ows)
	if rem != bdd.False {
		// No remaining rule covers this space: clear the device's action.
		v.clear(dev, rem)
	}
	v.stats.ApplyTime += time.Since(start)
	return nil
}

// clear removes device dev's coordinate from every class intersecting pred.
func (v *Verifier) clear(dev fib.DeviceID, pred bdd.Ref) {
	//flashvet:allow gcroot — transient intermediates within one clear call; dead before any collection can run
	type move struct {
		vec   pat.Ref
		inter bdd.Ref
		rem   bdd.Ref
	}
	var moves []move
	for vec, p := range v.model.ECs {
		inter := v.E.And(p, pred)
		if inter == bdd.False {
			continue
		}
		moves = append(moves, move{vec, inter, v.E.Diff(p, pred)})
	}
	for _, m := range moves {
		if m.rem == bdd.False {
			delete(v.model.ECs, m.vec)
		} else {
			v.model.ECs[m.vec] = m.rem
		}
	}
	for _, m := range moves {
		nv := v.Store.Set(m.vec, dev, fib.None)
		if old, ok := v.model.ECs[nv]; ok {
			v.model.ECs[nv] = v.E.Or(old, m.inter)
		} else {
			v.model.ECs[nv] = m.inter
		}
	}
}

func sortRules(rs []fib.Rule) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Less(rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Roots yields every BDD ref the verifier holds — the EC model, the
// device tables, and the by-ID rule index — for the engine's
// mark-and-sweep GC root set. The prefix tries index rule IDs, not
// predicates, so they are GC-invariant.
func (v *Verifier) Roots(yield func(bdd.Ref)) {
	v.model.Roots(yield)
	for _, tb := range v.tables {
		tb.Roots(yield)
	}
	for _, rs := range v.rules {
		for _, r := range rs {
			yield(r.Match)
		}
	}
}

// RemapRefs rewrites all held refs through a GC remap. Tables and the
// rule index hold independent value copies of each rule, so both are
// rewritten.
func (v *Verifier) RemapRefs(m bdd.Remap) {
	v.model.RemapRefs(m)
	for _, tb := range v.tables {
		tb.RemapRefs(m)
	}
	for _, rs := range v.rules {
		for id, r := range rs {
			r.Match = m.Apply(r.Match)
			rs[id] = r
		}
	}
}

// GC runs a mark-and-sweep collection on the verifier's engine and
// rewrites the verifier's state through the resulting remap. The caller
// must not hold any other refs into v.E across the call.
func (v *Verifier) GC() bdd.GCStats {
	remap, st := v.E.GC(v.Roots)
	v.RemapRefs(remap)
	return st
}

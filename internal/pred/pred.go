// Package pred defines the common predicate-engine interface the hybrid
// representation work introduced: Flash's model and verification layers
// (internal/imt, internal/ce2d, internal/fib) manipulate header-space
// predicates through this interface instead of the concrete
// *bdd.Engine, so a subspace can run on whichever representation fits
// its installed rules — interval atoms (internal/atoms) while every
// rule is a pure prefix interval, the ROBDD engine (internal/bdd) once
// ternary/multi-field/rewrite rules appear.
//
// Refs stay bdd.Ref for both implementations: an opaque dense int32
// handle whose canonicity contract ("equal Refs ⇔ equivalent
// predicates" within one engine) both representations uphold — the
// inverse model's Reduce II step and the CE2D class maps key on Refs
// and rely on exactly that. A Ref is only meaningful against the engine
// that minted it; the flashvet bddref analyzer polices cross-engine
// flow for interface call sites just as it does for concrete ones.
package pred

import "repro/internal/bdd"

// Engine is the operation set Flash's model construction (Fast IMT),
// verification (CE2D), and observability layers need from a predicate
// representation. *bdd.Engine satisfies it natively; *atoms.Engine
// implements it over canonical interval sets.
//
// The concurrency contract follows the BDD engine's: the algebraic
// operations and read-only walks are safe for concurrent use, while GC
// (and any representation-specific structural method) requires
// exclusive access, which Flash provides behind the owning worker's
// mutex.
type Engine interface {
	// NumVars reports the width of the Boolean universe (total header
	// bits for the layout both representations compile against).
	NumVars() int
	// NumNodes is the representation's memory-footprint proxy: decision
	// nodes for BDDs, interned interval endpoints for atom sets.
	NumNodes() int

	// Algebra. Every operation returns a canonical Ref and maintains the
	// §3.3 predicate-operation counters.
	And(a, b bdd.Ref) bdd.Ref
	Or(a, b bdd.Ref) bdd.Ref
	Not(a bdd.Ref) bdd.Ref
	Diff(a, b bdd.Ref) bdd.Ref
	Implies(a, b bdd.Ref) bool
	Overlaps(a, b bdd.Ref) bool

	// Point and witness queries. Assignments are indexed by variable
	// (header line bit, most significant first), matching hs.Assignment.
	Eval(r bdd.Ref, assignment []bool) bool
	AnySat(r bdd.Ref) []bool
	SatCount(r bdd.Ref) float64

	// Activity counters (atomic; safe to sample concurrently).
	Ops() uint64
	CacheStats() (hits, misses uint64)
	CacheEvictions() uint64
	GCRuns() uint64
	ReclaimedNodes() uint64

	// CheckInvariants verifies representation canonicity (flashcheck
	// tier); GC runs a mark-and-sweep over the caller's root set and
	// returns the dense old→new remap. Exclusive-access only.
	CheckInvariants() error
	GC(roots func(yield func(bdd.Ref))) (bdd.Remap, bdd.GCStats)
}

package flash

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/fib"
)

// reachSys builds a small system with an a→d reachability check over
// the line topology.
func reachSys(t *testing.T, opts ...Option) *System {
	t.Helper()
	base := []Option{
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithChecks(CheckSpec{
			Name: "a-to-d", Kind: CheckReach,
			Expr: "a .* d", Sources: []string{"a"}, Dest: "d",
		}),
	}
	sys, err := NewSystem(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// feedLine synchronizes the whole a→b→c→d chain for one epoch, with b's
// next hop configurable (the check's fate pivots on b). Rule IDs and
// priorities are derived from the epoch ("e1", "e2", …) so successive
// epochs insert fresh rules that shadow the previous epoch's.
func feedLine(t *testing.T, sys *System, epoch string, bAction Action) []Result {
	t.Helper()
	var e int
	if _, err := fmt.Sscanf(epoch, "e%d", &e); err != nil {
		t.Fatalf("feedLine epoch %q: %v", epoch, err)
	}
	var out []Result
	actions := []Action{Forward(1), bAction, Forward(3), Forward(4)}
	for d, action := range actions {
		dev := DeviceID(d)
		u := wildcard(int64(10*e)+int64(d), action)
		u.Rule.Pri = int32(e)
		rs, err := sys.FeedContext(context.Background(), Msg{
			Device: dev, Epoch: epoch, Updates: []Update{u},
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rs...)
	}
	return out
}

func resultStrings(rs []Result) []string {
	out := make([]string, 0, len(rs))
	for _, r := range rs {
		out = append(out, r.String())
	}
	sort.Strings(out)
	return out
}

func TestSnapshotEmptySystem(t *testing.T) {
	sys := reachSys(t)
	sn, err := sys.Snapshot()
	if !errors.Is(err, ErrNoEpoch) {
		t.Fatalf("Snapshot on unfed system: err = %v, want ErrNoEpoch", err)
	}
	if sn != nil {
		sn.Release()
	}
}

func TestWhatIfDetectsChange(t *testing.T) {
	sys := reachSys(t)
	live := feedLine(t, sys, "e1", Forward(2))
	if len(live) == 0 || live[len(live)-1].Verdict != VerdictSatisfied {
		t.Fatalf("live verdict = %+v, want satisfied", live)
	}

	// Hypothesis: b starts dropping. The what-if must report unsatisfied
	// without touching live state or publishing to subscribers.
	rs, err := sys.WhatIf(context.Background(), []DeviceBlock{
		{Device: 1, Updates: []Update{{Op: fib.Insert,
			Rule: Rule{ID: 99, Pri: 10, Action: Drop,
				Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Check == "a-to-d" && r.Verdict == VerdictUnsatisfied {
			found = true
		}
	}
	if !found {
		t.Fatalf("what-if results %v missing unsatisfied a-to-d", resultStrings(rs))
	}
	// Live model unchanged: the published verdict is still satisfied.
	for _, vs := range sys.Verdicts() {
		if vs.Spec == "a-to-d" && vs.Verdict != VerdictSatisfied {
			t.Fatalf("live verdict mutated by what-if: %+v", vs)
		}
	}
	// And a fresh what-if with no overlapping hypothesis reproduces the
	// live satisfied verdict.
	rs2, err := sys.WhatIf(context.Background(), []DeviceBlock{
		{Device: 0, Updates: []Update{{Op: fib.Insert,
			Rule: Rule{ID: 7, Pri: 5, Action: Forward(1),
				Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs2 {
		if r.Check == "a-to-d" && r.Verdict != VerdictSatisfied {
			t.Fatalf("non-breaking what-if flipped the verdict: %v", resultStrings(rs2))
		}
	}
}

// TestSnapshotSurvivesGC is the acceptance regression: a pinned snapshot
// must keep answering what-ifs identically across an explicit GC cycle
// that reclaims the epoch it captured.
func TestSnapshotSurvivesGC(t *testing.T) {
	sys := reachSys(t, WithSubspaces(2, ""))
	feedLine(t, sys, "e1", Forward(2))

	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if len(snap.Epochs()) == 0 {
		t.Fatal("snapshot captured no epochs")
	}

	hypo := []DeviceBlock{
		{Device: 1, Updates: []Update{{Op: fib.Insert,
			Rule: Rule{ID: 99, Pri: 10, Action: Drop,
				Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0x80, Len: 1}}}}}},
	}
	before, err := snap.Apply(context.Background(), hypo)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("what-if produced no results")
	}

	// Churn the live model across several epochs (fresh rule IDs, rising
	// priority, shifting prefixes) so the e1 nodes the snapshot depends
	// on are garbage from the live model's view, then collect.
	for e := 2; e <= 6; e++ {
		for dev := DeviceID(0); dev < 4; dev++ {
			action := Forward(2)
			if e%2 == 0 {
				action = Drop
			}
			if _, err := sys.FeedContext(context.Background(), Msg{
				Device: dev, Epoch: fmt.Sprintf("e%d", e),
				Updates: []Update{{Op: fib.Insert, Rule: Rule{
					ID: int64(100*e) + int64(dev), Pri: int32(e), Action: action,
					Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: uint64(e) << 4, Len: 4}},
				}}},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if reclaimed := sys.GC(); reclaimed == 0 {
		t.Fatal("churn produced no garbage — the GC cycle this test guards never ran")
	}

	after, err := snap.Apply(context.Background(), hypo)
	if err != nil {
		t.Fatalf("what-if after GC: %v", err)
	}
	b, a := resultStrings(before), resultStrings(after)
	if len(a) != len(b) {
		t.Fatalf("what-if changed across GC: %d results before, %d after", len(b), len(a))
	}
	for i := range b {
		if a[i] != b[i] {
			t.Fatalf("what-if result diverged across GC:\n  before: %s\n  after:  %s", b[i], a[i])
		}
	}

	// Released snapshots refuse further transactions...
	snap.Release()
	if !snap.Released() {
		t.Fatal("Released() false after Release")
	}
	if _, err := snap.Apply(context.Background(), hypo); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("Apply after Release: err = %v, want ErrSnapshotReleased", err)
	}
	snap.Release() // idempotent

	// ...and their pins are actually gone: a second collection runs with
	// zero snapshots registered.
	if n := sys.StatsSnapshot().Snapshots; n != 0 {
		t.Fatalf("live snapshot count after Release = %d", n)
	}
	sys.GC()
}

func TestWhatIfCanceledContext(t *testing.T) {
	sys := reachSys(t)
	feedLine(t, sys, "e1", Forward(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.WhatIf(ctx, []DeviceBlock{
		{Device: 1, Updates: []Update{wildcard(9, Drop)}},
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWhatIfDifferential is the acceptance differential: a live ingest
// stream must produce byte-identical model fingerprints and verdict
// multisets whether or not what-if transactions run concurrently.
func TestWhatIfDifferential(t *testing.T) {
	const seed = 0x5eed5
	_, seq := diffWorkload(seed)
	w, _ := diffWorkload(seed)
	epochs := diffStream(t, seq, 24)
	lastEpoch := fmt.Sprintf("e%d", len(epochs))

	newSys := func() *System {
		sys, err := NewSystem(
			WithTopo(w.Topo),
			WithLayout(w.Layout),
			WithSubspaces(diffSubspaces, ""),
			WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	run := func(sys *System, whatifs bool) ([]string, string) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if whatifs {
			// Hammer what-if transactions for the whole ingest; every one
			// forks from a live snapshot while FeedBatch runs.
			wg.Add(1)
			go func() {
				defer wg.Done()
				hypo := []DeviceBlock{{Device: 3, Updates: []Update{
					{Op: fib.Insert, Rule: Rule{ID: 12345, Pri: 99, Action: Drop,
						Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}}},
				}}}
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := sys.WhatIf(context.Background(), hypo); err != nil &&
						!errors.Is(err, ErrNoEpoch) {
						t.Errorf("concurrent what-if: %v", err)
						return
					}
				}
			}()
		}
		var verdicts []string
		for _, msgs := range epochs {
			rs, err := sys.FeedBatch(context.Background(), msgs)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				verdicts = append(verdicts, r.String())
			}
		}
		close(stop)
		wg.Wait()
		sort.Strings(verdicts)
		fp, err := sys.ModelFingerprint(lastEpoch)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts, fp
	}

	wantV, wantFP := run(newSys(), false)
	gotV, gotFP := run(newSys(), true)
	if gotFP != wantFP {
		t.Fatal("model fingerprint diverges when what-ifs run concurrently with ingest")
	}
	if len(gotV) != len(wantV) {
		t.Fatalf("verdict multiset size: %d with what-ifs, %d without", len(gotV), len(wantV))
	}
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("verdict multiset diverges at %d:\n  with:    %s\n  without: %s", i, gotV[i], wantV[i])
		}
	}
}

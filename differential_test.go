package flash

// Differential oracle suite: Flash's scheduler/batching matrix is run
// against two independently-implemented baselines (Delta-net* interval
// lists, APKeep* per-update ECs) on seeded, skewed workloads. Every
// configuration must agree on the semantic model (per-device forwarding
// action at seeded probe headers) and on the verdict multiset — the
// work-stealing scheduler and Fast IMT batching may only change *when*
// work happens, never *what* is computed.

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/apkeep"
	"repro/internal/bdd"
	"repro/internal/deltanet"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/pat"
	"repro/internal/topo"
	"repro/internal/wire"
	"repro/internal/workload"
)

const diffSubspaces = 4

// diffWorkload builds a fresh tiny skewed workload. Every engine gets
// its own Workload value (and thus its own BDD engine): the APKeep*
// baseline and Flash both compile into the workload's engine, and
// sharing one would let the systems interfere.
func diffWorkload(seed int64) (*workload.Workload, []workload.DevUpdate) {
	w := workload.TraceAPSP("diff", topo.Internet2())
	return w, w.SkewedChurn(3, diffSubspaces, 0.9, seed)
}

// diffProbes returns seeded random probe headers over the dst field.
func diffProbes(w *workload.Workload, seed int64, n int) []uint64 {
	width := w.Layout.FieldBits("dst")
	rng := rand.New(rand.NewSource(seed))
	probes := make([]uint64, n)
	for i := range probes {
		probes[i] = uint64(rng.Intn(1 << uint(width)))
	}
	return probes
}

// diffFingerprint hashes the full probe×device action table — the
// semantic fingerprint of a data plane model. Two systems with equal
// fingerprints agree on the forwarding behaviour at every probe.
func diffFingerprint(devices int, probes []uint64, actionAt func(dev fib.DeviceID, x uint64) fib.Action) uint64 {
	h := fnv.New64a()
	for d := 0; d < devices; d++ {
		for _, x := range probes {
			fmt.Fprintf(h, "%d/%x/%v\n", d, x, actionAt(fib.DeviceID(d), x))
		}
	}
	return h.Sum64()
}

// diffConfig is one cell of the scheduler/batching/GC/representation
// matrix.
type diffConfig struct {
	workers, batch int
	budget         int           // WithMemoryBudget; 0 disables automatic GC
	mode           PredicateMode // predicate representation strategy
}

// diffConfigs is the scheduler/batching/GC/representation matrix under
// differential test. The budgeted rows force frequent in-engine
// collections (the tiny budget is crossed almost every block), proving
// GC changes when nodes are reclaimed but never what is computed. The
// hybrid rows run the same workload on Delta-net-style interval atoms
// (the churn workloads are pure prefix, so the atom path stays live
// end-to-end), proving representation changes cost but never verdicts.
func diffConfigs() []diffConfig {
	var cfgs []diffConfig
	for _, wk := range []int{1, 4, runtime.NumCPU()} {
		for _, bt := range []int{1, 16} {
			cfgs = append(cfgs, diffConfig{workers: wk, batch: bt})
		}
	}
	cfgs = append(cfgs,
		diffConfig{workers: 1, batch: 1, budget: 64},
		diffConfig{workers: 4, batch: 16, budget: 64},
		diffConfig{workers: 1, batch: 1, mode: PredicateHybrid},
		diffConfig{workers: 4, batch: 16, mode: PredicateHybrid},
		// Atoms are far more compact than BDD nodes (that is the point of
		// the hybrid mode), so the budget that forces a collection every
		// few blocks on BDDs must be far tighter here to trip at all.
		diffConfig{workers: 4, batch: 16, budget: 8, mode: PredicateHybrid},
	)
	return cfgs
}

// TestDifferentialModelOracle: the final EC model produced by Flash
// under every workers×batch configuration must match the Delta-net*
// and APKeep* baselines probe-for-probe.
func TestDifferentialModelOracle(t *testing.T) {
	for _, seed := range []int64{0xd1ff1, 0xd1ff2} {
		// Delta-net* baseline: sorted interval lists, no BDDs at all.
		dw, dseq := diffWorkload(seed)
		devices := dw.Topo.N()
		probes := diffProbes(dw, seed*31, 96)
		dn := deltanet.New(dw.Layout)
		for _, du := range dseq {
			if err := dn.Apply(du.Dev, du.Update); err != nil {
				t.Fatal(err)
			}
		}
		want := diffFingerprint(devices, probes, dn.ActionAt)

		// APKeep* baseline: per-update EC maintenance on its own engine.
		aw, aseq := diffWorkload(seed)
		primary := aw.Layout.Fields()[0]
		store := pat.NewStore()
		ap := apkeep.New(aw.Space.E, store, bdd.True, primary.Name, primary.Bits)
		for _, du := range aseq {
			if err := ap.Apply(du.Dev, du.Update); err != nil {
				t.Fatal(err)
			}
		}
		apFP := diffFingerprint(devices, probes, func(dev fib.DeviceID, x uint64) fib.Action {
			vec, ok := ap.Model().Lookup(aw.Space.E, aw.Space.Assignment(hs.Header{x}))
			if !ok {
				return fib.None
			}
			return store.Get(vec, dev)
		})
		if apFP != want {
			t.Fatalf("seed %#x: APKeep* disagrees with Delta-net* (oracle baselines diverge)", seed)
		}

		for _, cfg := range diffConfigs() {
			fw, fseq := diffWorkload(seed)
			b := NewModelBuilder(
				WithTopo(fw.Topo),
				WithLayout(fw.Layout),
				WithSubspaces(diffSubspaces, ""),
				WithWorkers(cfg.workers),
				WithBatch(cfg.batch),
				WithMemoryBudget(cfg.budget),
				WithPredicateMode(cfg.mode),
			)
			for _, batch := range workload.Chunk(fseq, 32) {
				blocks := make([]DeviceBlock, 0, len(batch))
				for _, fb := range batch {
					db := DeviceBlock{Device: fb.Device}
					for _, u := range fb.Updates {
						db.Updates = append(db.Updates, Update{Op: u.Op,
							Rule: Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc}})
					}
					blocks = append(blocks, db)
				}
				if err := b.ApplyBlock(blocks); err != nil {
					t.Fatal(err)
				}
			}
			got := diffFingerprint(devices, probes, func(dev fib.DeviceID, x uint64) fib.Action {
				a, err := b.ActionAt(dev, []uint64{x})
				if err != nil {
					return fib.None
				}
				return a
			})
			if got != want {
				t.Fatalf("seed %#x workers=%d batch=%d budget=%d mode=%s: Flash model diverges from baselines",
					seed, cfg.workers, cfg.batch, cfg.budget, cfg.mode)
			}
			if cfg.mode == PredicateHybrid {
				if n := b.PredicateCutovers(); n != 0 {
					t.Fatalf("seed %#x workers=%d batch=%d budget=%d: prefix-only churn forced %d atom cutovers",
						seed, cfg.workers, cfg.batch, cfg.budget, n)
				}
				for i, m := range b.PredicateModes() {
					if m != "atoms" {
						t.Fatalf("seed %#x workers=%d batch=%d budget=%d: subspace %d on %q, want atoms (hybrid row degenerated)",
							seed, cfg.workers, cfg.batch, cfg.budget, i, m)
					}
				}
			}
		}
	}
}

// diffStream converts a flat update sequence into CE2D wire messages:
// consecutive updates are grouped into epochs, with at most one message
// per device per epoch (the CE2D contract).
func diffStream(t *testing.T, seq []workload.DevUpdate, perEpoch int) [][]Msg {
	t.Helper()
	var epochs [][]Msg
	for start, e := 0, 1; start < len(seq); e++ {
		end := start + perEpoch
		if end > len(seq) {
			end = len(seq)
		}
		byDev := make(map[fib.DeviceID][]fib.Update)
		var order []fib.DeviceID
		for _, du := range seq[start:end] {
			if _, ok := byDev[du.Dev]; !ok {
				order = append(order, du.Dev)
			}
			byDev[du.Dev] = append(byDev[du.Dev], du.Update)
		}
		var msgs []Msg
		for _, dev := range order {
			m, err := wire.FromFib(dev, fmt.Sprintf("e%d", e), byDev[dev])
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, m)
		}
		epochs = append(epochs, msgs)
		start = end
	}
	return epochs
}

// TestDifferentialVerdictOracle: the verdict multiset and final model
// fingerprint must be identical across the whole workers×batch matrix,
// including against an APKeep-style per-update reference configuration.
func TestDifferentialVerdictOracle(t *testing.T) {
	const seed = 0xd1ff3
	_, seq := diffWorkload(seed)
	rw, _ := diffWorkload(seed)
	epochs := diffStream(t, seq, 24)
	lastEpoch := fmt.Sprintf("e%d", len(epochs))

	newSys := func(extra ...Option) *System {
		opts := []Option{
			WithTopo(rw.Topo),
			WithLayout(rw.Layout),
			WithSubspaces(diffSubspaces, ""),
			WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
		}
		sys, err := NewSystem(append(opts, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	run := func(sys *System, gulp bool) ([]string, string) {
		var verdicts []string
		for _, msgs := range epochs {
			if gulp {
				rs, err := sys.FeedBatch(context.Background(), msgs)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					verdicts = append(verdicts, r.String())
				}
				continue
			}
			for _, m := range msgs {
				rs, err := sys.FeedContext(context.Background(), m)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					verdicts = append(verdicts, r.String())
				}
			}
		}
		sort.Strings(verdicts)
		fp, err := sys.ModelFingerprint(lastEpoch)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts, fp
	}

	// Reference: per-update processing (the APKeep-style ablation), no
	// batching, sequential feed.
	wantVerdicts, wantFP := run(newSys(WithPerUpdate(true), WithWorkers(1)), false)
	if len(wantVerdicts) == 0 {
		t.Fatal("reference run produced no verdicts")
	}

	for _, cfg := range diffConfigs() {
		sys := newSys(WithWorkers(cfg.workers), WithBatch(cfg.batch), WithMemoryBudget(cfg.budget), WithPredicateMode(cfg.mode))
		gotVerdicts, gotFP := run(sys, true)
		if gotFP != wantFP {
			t.Fatalf("workers=%d batch=%d budget=%d mode=%s: model fingerprint diverges from per-update reference",
				cfg.workers, cfg.batch, cfg.budget, cfg.mode)
		}
		if cfg.mode == PredicateHybrid {
			// The churn workload is pure prefix: the atom representation
			// must have survived the whole run, or the row silently
			// degenerated into another BDD row and proved nothing.
			if n := sys.PredicateCutovers(); n != 0 {
				t.Fatalf("workers=%d batch=%d budget=%d: prefix-only churn forced %d atom cutovers", cfg.workers, cfg.batch, cfg.budget, n)
			}
			for i, m := range sys.PredicateModes() {
				if m != "atoms" {
					t.Fatalf("workers=%d batch=%d budget=%d: subspace %d on %q, want atoms", cfg.workers, cfg.batch, cfg.budget, i, m)
				}
			}
		}
		if len(gotVerdicts) != len(wantVerdicts) {
			t.Fatalf("workers=%d batch=%d budget=%d: %d verdicts, reference has %d",
				cfg.workers, cfg.batch, cfg.budget, len(gotVerdicts), len(wantVerdicts))
		}
		for i := range wantVerdicts {
			if gotVerdicts[i] != wantVerdicts[i] {
				t.Fatalf("workers=%d batch=%d budget=%d: verdict multiset diverges at %d:\n  got:  %s\n  want: %s",
					cfg.workers, cfg.batch, cfg.budget, i, gotVerdicts[i], wantVerdicts[i])
			}
		}
		if cfg.budget > 0 && sys.StatsSnapshot().GC.Runs == 0 {
			t.Fatalf("workers=%d batch=%d budget=%d: budgeted run never collected — the GC path was not exercised",
				cfg.workers, cfg.batch, cfg.budget)
		}
	}
}

// diffHeaderProbes returns seeded random probe headers spanning every
// layout field (diffProbes only covers single-field dst layouts).
func diffHeaderProbes(lay *hs.Layout, seed int64, n int) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	fields := lay.Fields()
	probes := make([][]uint64, n)
	for i := range probes {
		h := make([]uint64, len(fields))
		for j, f := range fields {
			h[j] = uint64(rng.Int63n(1 << uint(f.Bits)))
		}
		probes[i] = h
	}
	return probes
}

// TestDifferentialHybridGenerators runs every workload generator through
// a BDD-mode and a hybrid-mode ModelBuilder and requires identical model
// fingerprints. The pure-prefix generators (trace/LNet APSP) must keep
// the atom representation live end-to-end; the generators that emit
// multi-field (LNet-ecmp) or ternary (LNet-smr) rules must instead trip
// the one-way cutover guard mid-stream — so this sweep covers both
// steady-state representations and the conversion itself on every
// workload shape the repo can generate.
func TestDifferentialHybridGenerators(t *testing.T) {
	small := topo.FabricParams{Pods: 2, TorsPerPod: 2, AggsPerPod: 2, SpinePlanes: 2, SpinePer: 1}
	gens := []struct {
		name   string
		make   func() *workload.Workload
		prefix bool // pure single-field prefix rules: atoms must survive
	}{
		{"trace-apsp", func() *workload.Workload { return workload.TraceAPSP("diff", topo.Internet2()) }, true},
		{"lnet-apsp", func() *workload.Workload { return workload.LNetAPSP(small) }, true},
		{"lnet-ecmp", func() *workload.Workload { return workload.LNetECMP(small) }, false},
		{"lnet-smr", func() *workload.Workload { return workload.LNetSMR(small) }, false},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			run := func(mode PredicateMode) (uint64, *ModelBuilder) {
				w := g.make()
				b := NewModelBuilder(
					WithTopo(w.Topo),
					WithLayout(w.Layout),
					WithSubspaces(diffSubspaces, ""),
					WithPredicateMode(mode),
				)
				for _, batch := range workload.Chunk(w.InsertSequence(), 32) {
					blocks := make([]DeviceBlock, 0, len(batch))
					for _, fb := range batch {
						db := DeviceBlock{Device: fb.Device}
						for _, u := range fb.Updates {
							db.Updates = append(db.Updates, Update{Op: u.Op,
								Rule: Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc}})
						}
						blocks = append(blocks, db)
					}
					if err := b.ApplyBlock(blocks); err != nil {
						t.Fatal(err)
					}
				}
				probes := diffHeaderProbes(w.Layout, 0xbeef, 64)
				h := fnv.New64a()
				for d := 0; d < w.Topo.N(); d++ {
					for _, x := range probes {
						a, err := b.ActionAt(fib.DeviceID(d), x)
						if err != nil {
							t.Fatal(err)
						}
						fmt.Fprintf(h, "%d/%x/%v\n", d, x, a)
					}
				}
				return h.Sum64(), b
			}
			want, _ := run(PredicateBDD)
			got, hb := run(PredicateHybrid)
			if got != want {
				t.Fatalf("hybrid model diverges from BDD model on %s", g.name)
			}
			modes, cutovers := hb.PredicateModes(), hb.PredicateCutovers()
			if g.prefix {
				if cutovers != 0 {
					t.Fatalf("pure-prefix generator forced %d cutovers", cutovers)
				}
				for i, m := range modes {
					if m != "atoms" {
						t.Fatalf("subspace %d on %q, want atoms (hybrid run degenerated)", i, m)
					}
				}
			} else {
				if cutovers == 0 {
					t.Fatalf("non-prefix generator never tripped the cutover guard (modes %v)", modes)
				}
				for i, m := range modes {
					if m != "bdd" {
						t.Fatalf("subspace %d still on %q after non-prefix rules", i, m)
					}
				}
			}
		})
	}
}

// TestDifferentialHybridMidstreamCutover is the bug-class regression at
// the heart of the hybrid design: a System ingests prefix-only churn on
// atoms across many epochs, then one ACL (ternary) rule arrives and
// every subspace must convert its entire live state — universe, check
// scopes, queued messages, per-epoch verifiers — to a fresh BDD engine
// without changing a single verdict or the model fingerprint.
func TestDifferentialHybridMidstreamCutover(t *testing.T) {
	const seed = 0xc0701
	_, seq := diffWorkload(seed)
	rw, _ := diffWorkload(seed)
	prefixEpochs := diffStream(t, seq, 24)
	aclEpoch := fmt.Sprintf("e%d", len(prefixEpochs)+1)
	acl, err := wire.FromFib(0, aclEpoch, []fib.Update{{
		Op: fib.Insert,
		Rule: fib.Rule{ID: 99999, Pri: 99, Action: fib.Drop,
			Desc: fib.MatchDesc{{Field: "dst", Kind: fib.MatchTernary, Value: 1, Mask: 3}}},
	}})
	if err != nil {
		t.Fatal(err)
	}

	run := func(mode PredicateMode) ([]string, string) {
		sys, err := NewSystem(
			WithTopo(rw.Topo),
			WithLayout(rw.Layout),
			WithSubspaces(diffSubspaces, ""),
			WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
			WithPredicateMode(mode),
		)
		if err != nil {
			t.Fatal(err)
		}
		var verdicts []string
		feed := func(msgs []Msg) {
			rs, ferr := sys.FeedBatch(context.Background(), msgs)
			if ferr != nil {
				t.Fatal(ferr)
			}
			for _, r := range rs {
				verdicts = append(verdicts, r.String())
			}
		}
		for _, msgs := range prefixEpochs {
			feed(msgs)
		}
		if mode == PredicateHybrid {
			// All churn so far was pure prefix: the cutover must not have
			// fired yet, or this test is not exercising a mid-stream flip.
			if n := sys.PredicateCutovers(); n != 0 {
				t.Fatalf("hybrid system cut over during prefix churn (%d cutovers)", n)
			}
		}
		feed([]Msg{acl})
		if mode == PredicateHybrid {
			if n := sys.PredicateCutovers(); n != diffSubspaces {
				t.Fatalf("ACL rule triggered %d cutovers, want %d (one per subspace)", n, diffSubspaces)
			}
			for i, m := range sys.PredicateModes() {
				if m != "bdd" {
					t.Fatalf("subspace %d still on %q after ACL rule", i, m)
				}
			}
		}
		sort.Strings(verdicts)
		fp, ferr := sys.ModelFingerprint(aclEpoch)
		if ferr != nil {
			t.Fatal(ferr)
		}
		return verdicts, fp
	}

	wantVerdicts, wantFP := run(PredicateBDD)
	gotVerdicts, gotFP := run(PredicateHybrid)
	if len(wantVerdicts) == 0 {
		t.Fatal("reference run produced no verdicts")
	}
	if gotFP != wantFP {
		t.Fatal("post-cutover model fingerprint diverges from the all-BDD run")
	}
	if len(gotVerdicts) != len(wantVerdicts) {
		t.Fatalf("hybrid run produced %d verdicts, all-BDD run %d", len(gotVerdicts), len(wantVerdicts))
	}
	for i := range wantVerdicts {
		if gotVerdicts[i] != wantVerdicts[i] {
			t.Fatalf("verdict multiset diverges at %d:\n  got:  %s\n  want: %s", i, gotVerdicts[i], wantVerdicts[i])
		}
	}
}

package flash

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func decodeEnvelope(t *testing.T, resp *http.Response) (code, message string) {
	t.Helper()
	var env map[string]apiError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	e, ok := env["error"]
	if !ok {
		t.Fatalf("no \"error\" key in envelope: %v", env)
	}
	return e.Code, e.Message
}

func TestAdminHandlerNoSystem(t *testing.T) {
	h := NewAdminHandler(WithAdminMetrics(obs.NewRegistry("apitest-nosys")))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/v1/stats", "/v1/specs", "/v1/subscriptions"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s without system: status %d", path, resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != "no_system" {
			t.Fatalf("GET %s: error code %q", path, code)
		}
		resp.Body.Close()
	}

	// Unknown /v1 endpoints use the envelope too.
	resp, err := http.Get(srv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown endpoint: status %d", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "not_found" {
		t.Fatalf("unknown endpoint: code %q", code)
	}
	resp.Body.Close()

	// The unversioned aliases survive for scrapers.
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if got := strings.TrimSpace(string(body[:n])); got != "ok" {
			t.Fatalf("GET %s = %q, want ok", path, got)
		}
	}
	for _, path := range []string{"/metrics", "/v1/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: not JSON: %v", path, err)
		}
		resp.Body.Close()
	}
}

func TestAdminHandlerManagementAPI(t *testing.T) {
	sys := reachSys(t)
	feedLine(t, sys, "e1", Forward(2))
	srv := httptest.NewServer(NewAdminHandler(
		WithAdminMetrics(obs.NewRegistry("apitest-sys")),
		WithAdminSystem(sys),
		WithAdminHealth(sys.Health),
	))
	defer srv.Close()

	// /v1/stats reflects the fed model.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Subspaces == 0 || stats.ECs == 0 {
		t.Fatalf("stats = %+v, want populated", stats)
	}

	// /v1/specs lists the check with its settled verdict.
	resp, err = http.Get(srv.URL + "/v1/specs")
	if err != nil {
		t.Fatal(err)
	}
	var specsBody struct {
		Specs []apiSpec `json:"specs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&specsBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(specsBody.Specs) != 1 || specsBody.Specs[0].Name != "a-to-d" || specsBody.Specs[0].Kind != "reach" {
		t.Fatalf("specs = %+v", specsBody.Specs)
	}
	if len(specsBody.Specs[0].Verdicts) == 0 {
		t.Fatalf("spec has no verdicts: %+v", specsBody.Specs[0])
	}

	// /v1/subscriptions without SSE returns the verdict snapshot.
	resp, err = http.Get(srv.URL + "/v1/subscriptions?spec=a-to-d")
	if err != nil {
		t.Fatal(err)
	}
	var verdictsBody struct {
		Verdicts []VerdictStatus `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&verdictsBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(verdictsBody.Verdicts) == 0 || verdictsBody.Verdicts[0].Verdict != VerdictSatisfied {
		t.Fatalf("verdicts = %+v", verdictsBody.Verdicts)
	}

	// /v1/whatif runs a transaction: b dropping breaks a-to-d.
	body := `{"blocks":[{"device":1,"updates":[{"op":"insert","rule":{"id":99,"pri":10,"action":"drop","match":[{"field":"dst","kind":"prefix","len":0}]}}]}]}`
	resp, err = http.Post(srv.URL+"/v1/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif status %d", resp.StatusCode)
	}
	var whatifBody struct {
		Results []apiResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&whatifBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	broken := false
	for _, r := range whatifBody.Results {
		if r.Check == "a-to-d" && r.Verdict == VerdictUnsatisfied.String() {
			broken = true
		}
	}
	if !broken {
		t.Fatalf("whatif results %+v missing unsatisfied a-to-d", whatifBody.Results)
	}

	// Malformed requests get the envelope, not a panic or a bare 500.
	for _, bad := range []string{
		`{"blocks":[`,
		`{"blocks":[]}`,
		`{"blocks":[{"device":1,"updates":[{"op":"replace","rule":{}}]}]}`,
		`{"blocks":[{"device":1,"updates":[{"op":"insert","rule":{"action":"fwd:x"}}]}]}`,
		`{"blocks":[{"device":1,"updates":[{"op":"insert","rule":{"match":[{"kind":"range"}]}}]}]}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/whatif", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q: status %d", bad, resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != "bad_request" {
			t.Fatalf("bad body %q: code %q", bad, code)
		}
		resp.Body.Close()
	}

	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/whatif")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET whatif: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestAdminSSESubscription drives the SSE push end to end: subscribe
// over HTTP, flip a verdict, and read the event frames off the stream.
func TestAdminSSESubscription(t *testing.T) {
	sys := reachSys(t)
	feedLine(t, sys, "e1", Forward(2))
	srv := httptest.NewServer(NewAdminHandler(WithAdminSystem(sys)))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/subscriptions?spec=a-to-d", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type frame struct {
		id    string
		event string
		data  sseVerdict
	}
	frames := make(chan frame, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var f frame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				f.id = line[len("id: "):]
			case strings.HasPrefix(line, "event: "):
				f.event = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(line[len("data: "):]), &f.data); err != nil {
					return
				}
			case line == "":
				if f.event != "" {
					frames <- f
				}
				f = frame{}
			}
		}
	}()

	// The subscription started after e1 settled, so the flip below is
	// the first event this subscriber sees.
	feedLine(t, sys, "e2", Drop)
	select {
	case f := <-frames:
		if f.event != "verdict" || f.id == "" {
			t.Fatalf("frame = %+v", f)
		}
		if f.data.Spec != "a-to-d" || f.data.Verdict != VerdictUnsatisfied.String() {
			t.Fatalf("payload = %+v, want unsatisfied a-to-d", f.data)
		}
		if f.data.PrevVerdict != VerdictSatisfied.String() || f.data.First {
			t.Fatalf("payload = %+v, want flip from satisfied", f.data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE event within 5s")
	}

	// Disconnecting the client releases the server-side subscription.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for sys.StatsSnapshot().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server-side subscription leaked after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package flash

import (
	"log"

	"repro/internal/obs"
)

// Option configures a ModelBuilder or System. Options are applied in
// order, so later options override earlier ones; a Config value is itself
// an Option (it replaces the whole configuration), which is why code
// written against the original struct API — NewSystem(Config{...}) —
// still compiles. New code should prefer the functional options:
//
//	sys, err := flash.NewSystem(
//	    flash.WithTopo(g),
//	    flash.WithLayout(layout),
//	    flash.WithSubspaces(4),
//	    flash.WithChecks(checks...),
//	    flash.WithMetrics(reg),
//	)
type Option interface {
	apply(*Config)
}

// optionFunc adapts a plain function to the Option interface.
type optionFunc func(*Config)

func (f optionFunc) apply(c *Config) { f(c) }

// apply makes Config itself an Option: it replaces the configuration
// wholesale. This is the compile-compatibility bridge for the original
// struct-based API; put it first when mixing with other options.
//
// Deprecated: pass functional options (or WithConfig) to NewModelBuilder
// and NewSystem instead of a bare Config.
func (c Config) apply(dst *Config) { *dst = c }

// WithConfig replaces the whole configuration with cfg. It bridges the
// original struct-based API into the options API; apply it before any
// other option.
func WithConfig(cfg Config) Option { return cfg }

// WithTopo sets the network topology.
func WithTopo(g *Graph) Option {
	return optionFunc(func(c *Config) { c.Topo = g })
}

// WithLayout sets the packet header layout.
func WithLayout(l *Layout) Option {
	return optionFunc(func(c *Config) { c.Layout = l })
}

// WithSubspaces partitions the header space into n prefix subspaces of
// field (§3.4), each verified by its own parallel engine. n must be a
// power of two; field "" defaults to the layout's first field ("dst").
func WithSubspaces(n int, field string) Option {
	return optionFunc(func(c *Config) {
		c.Subspaces = n
		c.SubspaceField = field
	})
}

// WithSubspaceSet restricts a System to the given global subspace
// indices out of the WithSubspaces partition: only those workers are
// instantiated, with Result.Subspace, fingerprints, and checkpoints
// keeping the global numbering so disjoint subsets compose into the
// full-set answer (see Config.SubspaceSet). Empty restores the default
// of instantiating every subspace. ModelBuilder ignores the set.
func WithSubspaceSet(indices ...int) Option {
	return optionFunc(func(c *Config) {
		c.SubspaceSet = append([]int(nil), indices...)
	})
}

// WithChecks appends verification requirements (System only).
func WithChecks(checks ...CheckSpec) Option {
	return optionFunc(func(c *Config) { c.Checks = append(c.Checks, checks...) })
}

// WithPerUpdate forces per-update processing (the APKeep-style special
// case used by the ablation benchmarks).
func WithPerUpdate(on bool) Option {
	return optionFunc(func(c *Config) { c.PerUpdate = on })
}

// WithPredicateMode selects the predicate representation strategy (see
// Config.PredicateMode). PredicateBDD (the default) compiles every
// match into the sharded BDD engine. PredicateHybrid starts each
// subspace on Delta-net-style interval atoms — asymptotically cheaper
// while every installed rule is a pure prefix interval on the layout's
// first field — and converts the subspace to BDD, one way, the moment
// a rule arrives that atoms cannot represent (ternary match,
// multi-field match, or an interval-count explosion). Verdicts and
// model fingerprints are identical in both modes; only the cost model
// differs.
func WithPredicateMode(m PredicateMode) Option {
	return optionFunc(func(c *Config) { c.PredicateMode = m })
}

// WithSuccessors restricts the potential-path successor sets used by
// reachability checks (see Config.Succ).
func WithSuccessors(succ func(DeviceID) []DeviceID) Option {
	return optionFunc(func(c *Config) { c.Succ = succ })
}

// WithWorkers sets the number of scheduler workers that execute
// subspace tasks (see Config.Workers). n <= 0 (the default) selects
// GOMAXPROCS; the effective count never exceeds the subspace count.
// Subspace work is distributed by work stealing, so a skewed workload
// keeps all n workers busy instead of serializing behind the hot
// subspace's static owner.
func WithWorkers(n int) Option {
	return optionFunc(func(c *Config) { c.Workers = n })
}

// WithBatch bounds Fast IMT batching at n native updates (see
// Config.Batch): a ModelBuilder coalesces consecutive same-device
// blocks into one MR2 pass, and a Pipeline gulps consecutive same-epoch
// messages into one System.FeedBatch. n <= 1 (the default) disables
// batching; batches always flush at epoch boundaries and before model
// queries, so results are never delayed indefinitely and verdicts are
// identical to unbatched runs.
func WithBatch(n int) Option {
	return optionFunc(func(c *Config) { c.Batch = n })
}

// WithMemoryBudget bounds each subspace worker's live BDD node count
// (see Config.MemoryBudget): an engine grown past the budget runs an
// in-engine mark-and-sweep GC after the block that crossed it, and a
// ModelBuilder worker falls back to a full Compact rotation when
// collection alone cannot fit the budget. Reclamation never changes
// models or verdicts — only when nodes are released. n <= 0 (the
// default) disables automatic reclamation.
func WithMemoryBudget(n int) Option {
	return optionFunc(func(c *Config) { c.MemoryBudget = n })
}

// WithMetrics attaches an observability registry. Every subsystem
// publishes under its own sub-registry — imt/subspace<i> for
// ModelBuilder workers, ce2d/subspace<i> (with a nested imt) for System
// workers, plus pipeline and wire when those components are used. A nil
// registry (the default) keeps every hot path at its zero-cost no-op.
func WithMetrics(r *obs.Registry) Option {
	return optionFunc(func(c *Config) { c.Metrics = r })
}

// WithLogger sets the logger used by the Pipeline, Server and admin
// components for operational messages (verification errors, connection
// teardown). Nil (the default) silences them.
func WithLogger(l *log.Logger) Option {
	return optionFunc(func(c *Config) { c.Logger = l })
}

// buildConfig folds options into a Config.
func buildConfig(opts []Option) Config {
	var cfg Config
	for _, o := range opts {
		o.apply(&cfg)
	}
	return cfg
}

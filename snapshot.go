package flash

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bdd"
	"repro/internal/ce2d"
	"repro/internal/fib"
	"repro/internal/imt"
)

// snapSub is one subspace's captured state: a copy-on-write clone of the
// current verifier's Fast IMT model (device tables and EC map are
// copied; the immutable BDD nodes and PAT vectors behind them are
// shared) plus the set of devices that had synchronized the captured
// epoch. While registered in its worker's snaps list the clone's refs
// are part of the GC root set, so a collection can never sweep a
// snapshot out from under its holder.
type snapSub struct {
	w      *sysWorker
	epoch  ce2d.Epoch
	trans  *imt.Transformer // private clone, never the live verifier's state
	synced []fib.DeviceID
}

// Snapshot is a consistent copy-on-write capture of the system's model:
// per healthy subspace, the most-converged live verifier's device
// tables and EC model at one dispatch barrier. A snapshot pins its BDD
// refs against in-engine GC until Release; holding many snapshots holds
// that much model memory.
//
// Snapshots serve what-if transactions: Apply verifies hypothetical
// update blocks against the captured model without touching live state,
// fully concurrent with ingestion (it serializes with Feed per subspace
// on the worker mutex, never across subspaces).
type Snapshot struct {
	sys *System

	// subs is indexed by subspace; nil where no verifier was live (or
	// the subspace is poisoned). Immutable after Snapshot returns —
	// only Release detaches the entries.
	subs []*snapSub

	mu       sync.Mutex //flashvet:lockrank 40
	released bool
}

// Snapshot captures the current model under the dispatch barrier: no
// FeedBatch dispatch can interleave between the per-subspace captures,
// so the snapshot is a consistent cross-subspace cut of the result
// stream. Each subspace captures its most-converged live verifier (see
// ce2d.Dispatcher.Current); subspaces with no live verifier are skipped.
// It returns ErrNoEpoch when nothing has been fed yet.
//
// The caller must Release the snapshot; until then its BDD refs are
// pinned as GC roots in every captured subspace.
func (s *System) Snapshot() (*Snapshot, error) {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	snap := &Snapshot{sys: s}
	captured := 0
	for _, w := range s.workers {
		if s.isPoisoned(w.idx) {
			snap.subs = append(snap.subs, nil)
			continue
		}
		w.mu.Lock()
		epoch, v, ok := w.disp.Current()
		if !ok {
			w.mu.Unlock()
			snap.subs = append(snap.subs, nil)
			continue
		}
		ss := &snapSub{
			w:      w,
			epoch:  epoch,
			trans:  v.Transformer().Clone(),
			synced: v.SynchronizedDevices(),
		}
		w.snaps = append(w.snaps, ss)
		w.mu.Unlock()
		snap.subs = append(snap.subs, ss)
		captured++
	}
	if captured == 0 {
		return nil, ErrNoEpoch
	}
	s.snapCount.Add(1)
	return snap, nil
}

// Epochs reports the captured epoch per subspace index (absent entries
// had no live verifier at capture time).
func (sn *Snapshot) Epochs() map[int]string {
	out := make(map[int]string)
	for i, ss := range sn.subs {
		if ss != nil {
			out[i] = string(ss.epoch)
		}
	}
	return out
}

// Released reports whether Release has run.
func (sn *Snapshot) Released() bool {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.released
}

// Release unpins the snapshot: its refs leave every worker's GC root
// set and the next collection may reclaim them. Idempotent. Apply must
// not be called concurrently with (or after) Release.
func (sn *Snapshot) Release() {
	sn.mu.Lock()
	already := sn.released
	sn.released = true
	sn.mu.Unlock()
	if already {
		return
	}
	for _, ss := range sn.subs {
		if ss == nil {
			continue
		}
		w := ss.w
		w.mu.Lock()
		for i, cur := range w.snaps {
			if cur == ss {
				w.snaps = append(w.snaps[:i], w.snaps[i+1:]...)
				break
			}
		}
		w.mu.Unlock()
	}
	sn.sys.snapCount.Add(-1)
}

// Apply runs a what-if transaction: the hypothetical update blocks are
// applied to a private fork of the captured model and the affected
// subspaces are re-verified from scratch against the forked tables,
// returning the deterministic results the hypothetical network state
// produces. Live state is never touched, nothing is published to
// verdict subscriptions, and the snapshot remains valid for further
// Apply calls (each gets its own fork).
//
// A subspace none of whose compiled updates intersect is unaffected and
// contributes no results. Devices the captured epoch had synchronized
// are treated as synchronized in the hypothetical state too (a what-if
// asks "what if these FIBs converged", not "what if the epoch
// restarted"), plus every device a block touches.
//
// The context is checked between subspaces; a what-if canceled mid-way
// returns ctx.Err() with no partial results.
func (sn *Snapshot) Apply(ctx context.Context, blocks []DeviceBlock) ([]Result, error) {
	sn.mu.Lock()
	released := sn.released
	sn.mu.Unlock()
	if released {
		return nil, ErrSnapshotReleased
	}
	var out []Result
	for _, ss := range sn.subs {
		if ss == nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rs, err := ss.whatIf(sn.sys.cfg, blocks)
		if err != nil {
			return nil, err
		}
		out = append(out, rs...)
	}
	return out, nil
}

// WhatIf is the one-shot convenience: Snapshot, Apply, Release.
func (s *System) WhatIf(ctx context.Context, blocks []DeviceBlock) ([]Result, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	defer snap.Release()
	return snap.Apply(ctx, blocks)
}

// whatIf runs one subspace's share of a what-if transaction under the
// worker mutex — serialized with live feeds and GC for this subspace,
// concurrent with every other subspace. All transient refs minted here
// (compiled matches, forked model growth, verifier detection state)
// need no GC rooting: collection on this engine only runs under w.mu,
// and everything transient is dead before the mutex is released.
func (ss *snapSub) whatIf(cfg Config, blocks []DeviceBlock) (results []Result, err error) {
	w := ss.w
	w.mu.Lock()
	defer w.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			results, err = nil, fmt.Errorf("flash: what-if in subspace %d: panic: %v", w.idx, r)
		}
	}()

	// Compile the hypothetical updates against this subspace; a block
	// whose rules all miss the universe does not touch it.
	var compiled []fib.Block
	touched := make(map[fib.DeviceID]bool)
	compileAll := func() []fib.Block {
		out := make([]fib.Block, 0, len(blocks))
		clear(touched)
		for _, db := range blocks {
			fb := fib.Block{Device: db.Device}
			for _, u := range db.Updates {
				// Same compile (and hybrid cutover guard) as the live feed
				// path: a hypothetical ternary rule converts the subspace to
				// BDD exactly as feeding it live would.
				match := w.compileLocked(u.Rule.Desc)
				if match == bdd.False {
					continue // same skip the live feed path applies
				}
				fb.Updates = append(fb.Updates, fib.Update{
					Op: u.Op,
					Rule: fib.Rule{
						ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action,
						Match: match, Desc: u.Rule.Desc,
					},
				})
			}
			if len(fb.Updates) > 0 {
				out = append(out, fb)
				touched[db.Device] = true
			}
		}
		return out
	}
	// A mid-transaction cutover invalidates matches compiled earlier in
	// the loop (stale atom refs in locals); recompile everything on the
	// post-cutover engine — the guard is one-way, so at most one restart.
	before := w.cutovers
	compiled = compileAll()
	if w.cutovers != before {
		compiled = compileAll()
	}
	if len(compiled) == 0 {
		return nil, nil // subspace unaffected
	}

	// Fork the captured model and apply the hypothesis to the fork.
	wt := ss.trans.Clone()
	if aerr := wt.ApplyBlock(compiled); aerr != nil {
		return nil, fmt.Errorf("flash: what-if in subspace %d: %w", w.idx, aerr)
	}

	// Re-verify from scratch against the forked tables: detection state
	// is one-shot per device, so each what-if gets a fresh verifier.
	v := ce2d.NewVerifier(ce2d.Config{
		Topo:     cfg.Topo,
		Engine:   w.eng,
		Universe: w.universe,
		Checks:   w.checks,
		Succ:     cfg.Succ,
	})
	devs := append([]fib.DeviceID(nil), ss.synced...)
	for dev := range touched {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	var prev fib.DeviceID
	for i, dev := range devs {
		if i > 0 && dev == prev {
			continue
		}
		prev = dev
		evs, serr := v.SynchronizeTable(dev, wt.Table(dev))
		if serr != nil {
			return nil, fmt.Errorf("flash: what-if in subspace %d: %w", w.idx, serr)
		}
		for _, ev := range evs {
			r := Result{
				Subspace: w.idx,
				Epoch:    string(ss.epoch),
				Check:    ev.Check,
				Verdict:  ev.Verdict,
				Loop:     ev.Loop,
			}
			if asg := w.eng.AnySat(ev.Class); asg != nil {
				r.Witness = headerFromAssignment(w.cfg.Layout, asg)
			}
			results = append(results, r)
		}
	}
	return results, nil
}

// GC forces an immediate mark-and-sweep pass on every healthy subspace
// engine, returning the total node count reclaimed. Live snapshots are
// part of each worker's root set, so their state survives (regression:
// TestSnapshotSurvivesGC).
func (s *System) GC() int {
	total := 0
	for _, w := range s.workers {
		if s.isPoisoned(w.idx) {
			continue
		}
		w.mu.Lock()
		st := w.gcLocked()
		w.mu.Unlock()
		total += st.Reclaimed
	}
	return total
}

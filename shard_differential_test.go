package flash_test

// Shard rows of the differential-oracle matrix: the verdict multiset
// and final model fingerprint of a sharded coordinator at N ∈ {1,2,4}
// must be identical to the per-update reference configuration (the
// APKeep*-style ablation that anchors TestDifferentialVerdictOracle).

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	flash "repro"
	"repro/internal/fib"
	"repro/internal/shard"
	"repro/internal/topo"
	"repro/internal/wire"
	"repro/internal/workload"
)

const shardDiffSubspaces = 4

// shardDiffStream groups a flat update sequence into CE2D epoch
// messages: at most one message per device per epoch.
func shardDiffStream(t *testing.T, seq []workload.DevUpdate, perEpoch int) []flash.Msg {
	t.Helper()
	var msgs []flash.Msg
	for start, e := 0, 1; start < len(seq); e++ {
		end := start + perEpoch
		if end > len(seq) {
			end = len(seq)
		}
		byDev := make(map[fib.DeviceID][]fib.Update)
		var order []fib.DeviceID
		for _, du := range seq[start:end] {
			if _, ok := byDev[du.Dev]; !ok {
				order = append(order, du.Dev)
			}
			byDev[du.Dev] = append(byDev[du.Dev], du.Update)
		}
		for _, dev := range order {
			m, err := wire.FromFib(dev, fmt.Sprintf("e%d", e), byDev[dev])
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, m)
		}
		start = end
	}
	return msgs
}

func TestShardDifferentialOracle(t *testing.T) {
	const seed = 0xd1ff4
	w := workload.TraceAPSP("shard-diff", topo.Internet2())
	msgs := shardDiffStream(t, w.SkewedChurn(3, shardDiffSubspaces, 0.9, seed), 24)
	lastEpoch := msgs[len(msgs)-1].Epoch
	baseOpts := []flash.Option{
		flash.WithTopo(w.Topo),
		flash.WithLayout(w.Layout),
		flash.WithSubspaces(shardDiffSubspaces, ""),
		flash.WithChecks(flash.CheckSpec{Name: "loops", Kind: flash.CheckLoopFree}),
	}

	// Reference: per-update processing, sequential feed — the ablation
	// the whole differential matrix is anchored to.
	ref, err := flash.NewSystem(append(append([]flash.Option{}, baseOpts...),
		flash.WithPerUpdate(true), flash.WithWorkers(1))...)
	if err != nil {
		t.Fatal(err)
	}
	var wantV []string
	for _, m := range msgs {
		rs, err := ref.FeedContext(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			wantV = append(wantV, r.String())
		}
	}
	sort.Strings(wantV)
	if len(wantV) == 0 {
		t.Fatal("reference run produced no verdicts")
	}
	wantFP, err := ref.ModelFingerprint(lastEpoch)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 4} {
		var (
			mu  sync.Mutex
			got []string
		)
		c, err := shard.New(shard.Config{
			Subspaces: shardDiffSubspaces,
			Field:     "dst",
			FieldBits: w.Layout.FieldBits("dst"),
			Sets:      shard.Partition(shardDiffSubspaces, n),
			Factory:   shard.LocalFactory(baseOpts...),
			OnResult: func(r flash.Result) {
				mu.Lock()
				got = append(got, r.String())
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if _, err := c.FeedContext(context.Background(), m); err != nil {
				t.Fatal(err)
			}
		}
		fp, err := c.ModelFingerprint(context.Background(), lastEpoch)
		if err != nil {
			t.Fatal(err)
		}
		if fp != wantFP {
			t.Fatalf("shards=%d: model fingerprint diverges from per-update reference", n)
		}
		mu.Lock()
		sort.Strings(got)
		mu.Unlock()
		if len(got) != len(wantV) {
			t.Fatalf("shards=%d: %d verdicts, reference has %d", n, len(got), len(wantV))
		}
		for i := range wantV {
			if got[i] != wantV[i] {
				t.Fatalf("shards=%d: verdict multiset diverges at %d:\n  got:  %s\n  want: %s",
					n, i, got[i], wantV[i])
			}
		}
		c.Close()
	}
}

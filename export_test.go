package flash

// SetFeedHook installs a test seam that runs inside the subspace
// worker's scheduler task, before each message is applied. A panic in
// the hook exercises the worker-quarantine path for exactly the chosen
// subspace, which no public input can target deterministically; the
// scheduler property tests additionally use the hook as a per-subspace
// sequence witness (it observes the exact message order each subspace
// applies).
func (s *System) SetFeedHook(f func(subspace int, m Msg)) { s.feedHook = f }

package flash

// SetFeedHook installs a test seam that runs inside the subspace
// worker's scheduler task, before each message is applied. A panic in
// the hook exercises the worker-quarantine path for exactly the chosen
// subspace, which no public input can target deterministically; the
// scheduler property tests additionally use the hook as a per-subspace
// sequence witness (it observes the exact message order each subspace
// applies).
func (s *System) SetFeedHook(f func(subspace int, m Msg)) { s.feedHook = f }

// WorkerNodeCounts reports each subspace worker's live predicate node
// count (BDD nodes or atom interval sets, whichever representation is
// live), for the soak tests' bounded-memory assertions.
func (b *ModelBuilder) WorkerNodeCounts() []int {
	out := make([]int, len(b.workers))
	for i, w := range b.workers {
		w.mu.Lock()
		out[i] = w.eng.NumNodes()
		w.mu.Unlock()
	}
	return out
}

// WorkerNodeCounts reports each subspace worker's live predicate node
// count.
func (s *System) WorkerNodeCounts() []int {
	out := make([]int, len(s.workers))
	for i, w := range s.workers {
		w.mu.Lock()
		out[i] = w.eng.NumNodes()
		w.mu.Unlock()
	}
	return out
}

package flash

// SetFeedHook installs a test seam that runs inside each subspace
// worker's feed goroutine, before the message is applied. A panic in the
// hook exercises the worker-quarantine path for exactly the chosen
// subspace, which no public input can target deterministically.
func (s *System) SetFeedHook(f func(subspace int)) { s.feedHook = f }

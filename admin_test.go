package flash

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fib"
	"repro/internal/obs"
)

// TestAdminMetricsEndToEnd drives the full flashd shape: a System built
// with an observability registry behind the TCP wire server, an agent
// feeding an epoch-tagged update block, and the admin handler (the exact
// handler cmd/flashd mounts) serving /metrics, /healthz and
// /debug/pprof/. Per-subspace IMT and per-epoch CE2D metrics must
// advance after the block is fed.
func TestAdminMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry("flashd")
	sys, err := NewSystem(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithSubspaces(2, ""),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree, ExitNodes: []string{"d"}}),
		WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan Result, 16)
	srv := NewServer(l, sys, func(r Result) { results <- r })
	go srv.Serve()
	defer srv.Close()

	agent, err := DialAgent(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	// b→c then c→b: a forwarding loop over the whole space; CE2D must
	// detect it early (devices a and d never synchronize).
	msgs := []Msg{
		{Device: 1, Epoch: "e1", Updates: []Update{wildcard(1, Forward(2))}},
		{Device: 2, Epoch: "e1", Updates: []Update{wildcard(2, Forward(1))}},
	}
	for _, m := range msgs {
		if err := agent.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case r := <-results:
		if r.Loop != LoopFound {
			t.Fatalf("result %+v, want loop", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no detection result")
	}

	admin := httptest.NewServer(NewAdminHandler(WithAdminMetrics(reg)))
	defer admin.Close()

	// /healthz
	body := get(t, admin.URL+"/healthz")
	if strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	// /metrics reflects the fed update block.
	var snap obs.Snapshot
	if err := json.Unmarshal(get(t, admin.URL+"/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	for _, sub := range []string{"subspace0", "subspace1"} {
		// Per-epoch CE2D dispatcher progress.
		if v, ok := snap.Get("ce2d", sub, "messages"); !ok || v != int64(len(msgs)) {
			t.Errorf("ce2d/%s/messages = %d (ok=%v), want %d", sub, v, ok, len(msgs))
		}
		if v, ok := snap.Get("ce2d", sub, "verifiers_created"); !ok || v < 1 {
			t.Errorf("ce2d/%s/verifiers_created = %d (ok=%v), want >= 1", sub, v, ok)
		}
		if v, ok := snap.Get("ce2d", sub, "devices_synced"); !ok || v < 2 {
			t.Errorf("ce2d/%s/devices_synced = %d (ok=%v), want >= 2", sub, v, ok)
		}
		if h, ok := snap.Hist("ce2d", sub, "straggler_wait_ns"); !ok || h.Count < 2 {
			t.Errorf("ce2d/%s/straggler_wait_ns count = %d (ok=%v), want >= 2", sub, h.Count, ok)
		}
		if h, ok := snap.Hist("ce2d", sub, "feed_ns"); !ok || h.Count != int64(len(msgs)) {
			t.Errorf("ce2d/%s/feed_ns count = %d (ok=%v), want %d", sub, h.Count, ok, len(msgs))
		}
		// Per-subspace Fast IMT model-update activity inside the epoch
		// verifier (wildcard rules intersect both subspaces).
		if v, ok := snap.Get("ce2d", sub, "imt", "updates"); !ok || v < 2 {
			t.Errorf("ce2d/%s/imt/updates = %d (ok=%v), want >= 2", sub, v, ok)
		}
		if h, ok := snap.Hist("ce2d", sub, "imt", "map_ns"); !ok || h.Count < 2 {
			t.Errorf("ce2d/%s/imt/map_ns count = %d (ok=%v), want >= 2", sub, h.Count, ok)
		}
		// Engine gauges are sampled at snapshot time.
		if v, ok := snap.Get("ce2d", sub, "bdd_nodes"); !ok || v < 2 {
			t.Errorf("ce2d/%s/bdd_nodes = %d (ok=%v), want >= 2", sub, v, ok)
		}
	}
	// Wire transport counters.
	if v, ok := snap.Get("wire", "frames_rx"); !ok || v != int64(len(msgs)) {
		t.Errorf("wire/frames_rx = %d (ok=%v), want %d", v, ok, len(msgs))
	}
	if v, ok := snap.Get("wire", "bytes_rx"); !ok || v <= 0 {
		t.Errorf("wire/bytes_rx = %d (ok=%v), want > 0", v, ok)
	}
	if v, ok := snap.Get("wire", "conns_total"); !ok || v != 1 {
		t.Errorf("wire/conns_total = %d (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Get("serve", "results"); !ok || v < 1 {
		t.Errorf("serve/results = %d (ok=%v), want >= 1", v, ok)
	}

	// /debug/pprof/ and /debug/vars respond.
	if body := get(t, admin.URL+"/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong: %.80s", body)
	}
	if body := get(t, admin.URL+"/debug/vars"); !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars looks wrong: %.80s", body)
	}
}

// TestAdminModelBuilderMetrics checks the offline path: ModelBuilder
// subspace workers publish Fast IMT activity under imt/subspace<i>.
func TestAdminModelBuilderMetrics(t *testing.T) {
	reg := obs.NewRegistry("builder")
	b := NewModelBuilder(
		WithTopo(lineTopo()),
		WithLayout(dst8),
		WithSubspaces(2, ""),
		WithMetrics(reg),
	)
	blocks := []DeviceBlock{
		{Device: 0, Updates: []Update{wildcard(1, Forward(1))}},
		{Device: 1, Updates: []Update{
			wildcard(1, Drop),
			{Op: fib.Insert, Rule: Rule{ID: 2, Pri: 4, Action: Forward(2),
				Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0x80, Len: 1}}}},
		}},
	}
	if err := b.ApplyBlock(blocks); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, sub := range []string{"subspace0", "subspace1"} {
		if v, ok := snap.Get("imt", sub, "updates"); !ok || v < 2 {
			t.Errorf("imt/%s/updates = %d (ok=%v), want >= 2", sub, v, ok)
		}
		if v, ok := snap.Get("imt", sub, "ecs"); !ok || v < 1 {
			t.Errorf("imt/%s/ecs = %d (ok=%v), want >= 1", sub, v, ok)
		}
		if v, ok := snap.Get("imt", sub, "bdd_ops"); !ok || v <= 0 {
			t.Errorf("imt/%s/bdd_ops = %d (ok=%v), want > 0", sub, v, ok)
		}
		if h, ok := snap.Hist("imt", sub, "apply_ns"); !ok || h.Count != 1 {
			t.Errorf("imt/%s/apply_ns count = %d (ok=%v), want 1", sub, h.Count, ok)
		}
	}
	// Metrics survive a Compact (the rotated transformer re-attaches).
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyBlock([]DeviceBlock{{Device: 2, Updates: []Update{wildcard(3, Drop)}}}); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if h, ok := snap.Hist("imt", "subspace0", "apply_ns"); !ok || h.Count < 2 {
		t.Errorf("after Compact: imt/subspace0/apply_ns count = %d (ok=%v), want >= 2", h.Count, ok)
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return body
}

// TestAdminCheckpointEndpoint covers POST /v1/checkpoint: method
// gating, the unconfigured 404, the success JSON shape, and the error
// path.
func TestAdminCheckpointEndpoint(t *testing.T) {
	_, _, msgs := chaosWorkload(t)
	sys, err := NewSystem(ckptSysOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:len(msgs)/8] {
		if _, err := sys.FeedContext(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	admin := httptest.NewServer(NewAdminHandler(
		WithAdminSystem(sys),
		WithAdminCheckpoint(func() (CheckpointInfo, error) { return sys.Checkpoint(dir) }),
	))
	defer admin.Close()

	resp, err := http.Get(admin.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/checkpoint = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(admin.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Path      string `json:"path"`
		Bytes     int64  `json:"bytes"`
		Subspaces int    `json:"subspaces"`
		TookNs    int64  `json:"took_ns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/checkpoint = %d", resp.StatusCode)
	}
	if info.Bytes <= 0 || info.Subspaces == 0 || info.Path == "" {
		t.Fatalf("implausible checkpoint response: %+v", info)
	}
	if _, err := os.Stat(info.Path); err != nil {
		t.Fatalf("reported checkpoint path missing: %v", err)
	}

	// Unconfigured daemon: the endpoint explains how to enable it.
	bare := httptest.NewServer(NewAdminHandler(WithAdminSystem(sys)))
	defer bare.Close()
	resp, err = http.Post(bare.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unconfigured POST = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), "checkpoint-dir") {
		t.Fatalf("unconfigured error does not mention the flag: %s", body)
	}

	// Error path surfaces as 500.
	broken := httptest.NewServer(NewAdminHandler(WithAdminCheckpoint(
		func() (CheckpointInfo, error) { return CheckpointInfo{}, errors.New("disk on fire") },
	)))
	defer broken.Close()
	resp, err = http.Post(broken.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing checkpoint POST = %d, want 500", resp.StatusCode)
	}
}

// TestAdminHealthzRestoring: while preloaded streams are still waiting
// for their agents, /healthz must answer 503 "restoring" with progress,
// flipping to 200 once replay completes.
func TestAdminHealthzRestoring(t *testing.T) {
	var mu sync.Mutex
	pending, preloaded := 2, 3
	admin := httptest.NewServer(NewAdminHandler(WithAdminRestoring(func() (int, int) {
		mu.Lock()
		defer mu.Unlock()
		return pending, preloaded
	})))
	defer admin.Close()

	resp, err := http.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while restoring = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "restoring") || !strings.Contains(string(body), "1/3") {
		t.Fatalf("restoring body lacks progress: %q", body)
	}

	mu.Lock()
	pending = 0
	mu.Unlock()
	resp, err = http.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after replay = %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestAdminShardsEndpoint: /v1/shards serves the mounted coordinator
// status thunk as JSON and 404s when nothing is mounted.
func TestAdminShardsEndpoint(t *testing.T) {
	status := map[string]any{
		"subspaces": 4,
		"log_len":   17,
		"shards": []map[string]any{
			{"id": 0, "subspaces": []int{0, 1}, "healthy": true, "lag": 0},
			{"id": 1, "subspaces": []int{2, 3}, "healthy": false, "lag": 5},
		},
	}
	admin := httptest.NewServer(NewAdminHandler(WithAdminShards(func() any { return status })))
	defer admin.Close()

	resp, err := http.Get(admin.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/shards = %d: %s", resp.StatusCode, body)
	}
	var got struct {
		Subspaces int `json:"subspaces"`
		LogLen    int `json:"log_len"`
		Shards    []struct {
			ID      int  `json:"id"`
			Healthy bool `json:"healthy"`
			Lag     int  `json:"lag"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding /v1/shards: %v: %s", err, body)
	}
	if got.Subspaces != 4 || got.LogLen != 17 || len(got.Shards) != 2 ||
		got.Shards[1].Lag != 5 || got.Shards[1].Healthy {
		t.Fatalf("unexpected /v1/shards payload: %s", body)
	}

	resp, err = http.Post(admin.URL+"/v1/shards", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/shards = %d, want 405", resp.StatusCode)
	}

	bare := httptest.NewServer(NewAdminHandler())
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/shards without coordinator = %d, want 404", resp.StatusCode)
	}
}

package flash

// Soak tier (`make soak`): sustained skewed churn driven through a
// small memory budget. The assertions are the memory-management
// contract: live node counts stay bounded (a sawtooth, never the
// monotone growth of an unbounded engine), reclamation never changes
// the model (probe fingerprints byte-identical to a GC-disabled run),
// counters stay monotone across Compact rotations, and GC keeps working
// while a sibling subspace is quarantined.

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/fib"
	"repro/internal/topo"
	"repro/internal/workload"
)

const (
	soakChurn  = 1500 // prefix-mutating churn operations after the insert storm
	soakSeed   = 0x50a4
	soakBudget = 1500 // per-worker live-node watermark for the bounded run
)

// soakWorkload builds a garbage-heavy sequence: the APSP insert storm
// followed by churn that *mutates prefixes* on re-insert. SkewedChurn
// re-inserts identical predicates (hash-consing makes those free); the
// soak tier instead replaces a deleted rule's prefix with a fresh random
// one, so an engine that never reclaims accumulates the dead predicates
// of every churned-out rule.
func soakWorkload() (*workload.Workload, []workload.DevUpdate) {
	w := workload.TraceAPSP("soak", topo.Internet2())
	seq := w.InsertSequence()
	width := w.Layout.FieldBits("dst")
	type live struct {
		dev  fib.DeviceID
		rule fib.Rule
	}
	var pool []live
	for _, du := range seq {
		pool = append(pool, live{du.Dev, du.Update.Rule})
	}
	rng := rand.New(rand.NewSource(soakSeed))
	nextID := int64(1 << 40)
	for n := 0; n < soakChurn; n++ {
		i := rng.Intn(len(pool))
		l := pool[i]
		seq = append(seq, workload.DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Delete, Rule: l.rule}})
		nr := l.rule
		nr.ID = nextID
		nextID++
		plen := 6 + rng.Intn(width-5)
		nr.Desc = fib.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix,
			Value: uint64(rng.Intn(1<<uint(plen))) << uint(width-plen), Len: plen}}
		seq = append(seq, workload.DevUpdate{Dev: l.dev, Update: fib.Update{Op: fib.Insert, Rule: nr}})
		pool[i].rule = nr
	}
	return w, seq
}

// soakBlocks converts one workload chunk into builder blocks.
func soakBlocks(batch []fib.Block) []DeviceBlock {
	blocks := make([]DeviceBlock, 0, len(batch))
	for _, fb := range batch {
		db := DeviceBlock{Device: fb.Device}
		for _, u := range fb.Updates {
			db.Updates = append(db.Updates, Update{Op: u.Op,
				Rule: Rule{ID: u.Rule.ID, Pri: u.Rule.Pri, Action: u.Rule.Action, Desc: u.Rule.Desc}})
		}
		blocks = append(blocks, db)
	}
	return blocks
}

// TestSoakMemoryBudgetBounded: under sustained churn a budgeted builder
// must keep every worker's live node count inside budget + one-cycle
// slack while producing a model byte-identical to the unbounded run.
func TestSoakMemoryBudgetBounded(t *testing.T) {
	w, seq := soakWorkload()
	devices := w.Topo.N()
	probes := diffProbes(w, soakSeed*31, 96)

	run := func(budget int) (*ModelBuilder, []int) {
		b := NewModelBuilder(
			WithTopo(w.Topo),
			WithLayout(w.Layout),
			WithSubspaces(diffSubspaces, ""),
			WithWorkers(2),
			WithBatch(8),
			WithMemoryBudget(budget),
		)
		peak := make([]int, b.NumSubspaces())
		for _, batch := range workload.Chunk(seq, 32) {
			if err := b.ApplyBlock(soakBlocks(batch)); err != nil {
				t.Fatal(err)
			}
			for i, n := range b.WorkerNodeCounts() {
				if n > peak[i] {
					peak[i] = n
				}
			}
		}
		if err := b.Flush(); err != nil {
			t.Fatal(err)
		}
		return b, peak
	}

	unbounded, upeak := run(0)
	bounded, bpeak := run(soakBudget)
	t.Logf("peak nodes: unbounded=%v bounded=%v", upeak, bpeak)

	// The fixture must be heavy enough that an unbounded engine blows
	// well past the bound asserted below, or the assertion is vacuous.
	maxUnbounded := 0
	for _, n := range upeak {
		if n > maxUnbounded {
			maxUnbounded = n
		}
	}
	if maxUnbounded <= 2*soakBudget {
		t.Fatalf("fixture too small: unbounded peak %d never exceeds budget %d + slack", maxUnbounded, soakBudget)
	}

	// Bounded run: sawtooth. The watermark is checked after every
	// applied block, so the observable per-block peak may overshoot by
	// at most the growth of one block (one GC cycle of slack); budget
	// again is a generous bound for that.
	for i, n := range bpeak {
		if n > 2*soakBudget {
			t.Errorf("subspace %d: peak %d nodes exceeds budget %d + slack %d", i, n, soakBudget, soakBudget)
		}
	}
	if st := bounded.StatsSnapshot().GC; st.Runs == 0 || st.ReclaimedNodes == 0 {
		t.Fatalf("bounded run never collected (stats %+v)", st)
	}

	// Reclamation must not change the model: probe-level fingerprints
	// byte-identical to the GC-disabled run.
	actionAt := func(b *ModelBuilder) func(fib.DeviceID, uint64) fib.Action {
		return func(dev fib.DeviceID, x uint64) fib.Action {
			a, err := b.ActionAt(dev, []uint64{x})
			if err != nil {
				return fib.None
			}
			return a
		}
	}
	fpU := diffFingerprint(devices, probes, actionAt(unbounded))
	fpB := diffFingerprint(devices, probes, actionAt(bounded))
	if fpU != fpB {
		t.Fatalf("budgeted model fingerprint %#x diverges from unbounded %#x", fpB, fpU)
	}
}

// TestSoakCompactCountersMonotone: PredicateOps, CacheStats and GCStats
// must never move backwards across a Compact rotation (the per-worker
// base absorbs the discarded engine's history).
func TestSoakCompactCountersMonotone(t *testing.T) {
	w, seq := soakWorkload()
	b := NewModelBuilder(
		WithTopo(w.Topo),
		WithLayout(w.Layout),
		WithSubspaces(diffSubspaces, ""),
	)
	for _, batch := range workload.Chunk(seq, 64) {
		if err := b.ApplyBlock(soakBlocks(batch)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.GC(); err != nil { // seed GC history so its counters cross the rotation too
		t.Fatal(err)
	}

	st1 := b.StatsSnapshot()
	ops1, cs1, gc1 := st1.PredicateOps, st1.Cache, st1.GC
	if ops1 == 0 || cs1.Misses == 0 {
		t.Fatalf("fixture produced no engine activity (ops=%d misses=%d)", ops1, cs1.Misses)
	}
	if gc1.Runs == 0 {
		t.Fatal("explicit GC did not count a run")
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	st2 := b.StatsSnapshot()
	ops2, cs2, gc2 := st2.PredicateOps, st2.Cache, st2.GC
	if ops2 < ops1 {
		t.Errorf("PredicateOps dropped across Compact: %d -> %d", ops1, ops2)
	}
	if cs2.Hits < cs1.Hits || cs2.Misses < cs1.Misses || cs2.Evictions < cs1.Evictions {
		t.Errorf("CacheStats dropped across Compact: %+v -> %+v", cs1, cs2)
	}
	if gc2.Runs < gc1.Runs || gc2.ReclaimedNodes < gc1.ReclaimedNodes {
		t.Errorf("GCStats dropped across Compact: %+v -> %+v", gc1, gc2)
	}

	// Counters keep climbing on the rotated engines.
	if _, err := b.ActionAt(0, []uint64{0x1234}); err != nil {
		t.Fatal(err)
	}
	if ops3 := b.StatsSnapshot().PredicateOps; ops3 < ops2 {
		t.Errorf("PredicateOps dropped after post-Compact work: %d -> %d", ops2, ops3)
	}
}

// TestChaosGCUnderPoisoning: automatic GC keeps running on healthy
// subspaces while another subspace is quarantined mid-stream — no
// deadlock, no corruption, and the poisoned worker stays poisoned.
func TestChaosGCUnderPoisoning(t *testing.T) {
	_, seq := soakWorkload()
	epochs := diffStream(t, seq, 24)
	sys, err := NewSystem(
		WithTopo(topo.Internet2()),
		WithLayout(soakLayout()),
		WithSubspaces(diffSubspaces, ""),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
		WithMemoryBudget(soakBudget),
	)
	if err != nil {
		t.Fatal(err)
	}
	var poison atomic.Bool
	sys.SetFeedHook(func(subspace int, _ Msg) {
		if poison.Load() && subspace == 1 {
			panic("soak: injected panic in subspace 1")
		}
	})

	half := len(epochs) / 2
	feed := func(from, to int) int {
		results := 0
		for _, msgs := range epochs[from:to] {
			for _, m := range msgs {
				rs, err := sys.FeedContext(context.Background(), m)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					if r.Subspace == 1 && poison.Load() {
						t.Fatalf("result from quarantined subspace: %+v", r)
					}
					results++
				}
			}
		}
		return results
	}
	feed(0, half)
	poison.Store(true)
	feed(half, len(epochs))

	if got := sys.PoisonedSubspaces(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("poisoned = %v, want [1]", got)
	}
	if st := sys.StatsSnapshot().GC; st.Runs == 0 {
		t.Fatalf("no GC under poisoning (stats %+v)", st)
	}
	// Healthy subspaces kept collecting: their live node counts must not
	// have grown unboundedly past the watermark.
	for i, n := range sys.WorkerNodeCounts() {
		if i == 1 {
			continue // quarantined mid-stream; its engine is frozen as-is
		}
		if n > 2*soakBudget {
			t.Errorf("healthy subspace %d ended at %d nodes (budget %d)", i, n, soakBudget)
		}
	}
}

func soakLayout() *Layout {
	w, _ := soakWorkload()
	return w.Layout
}

package flash_test

// Shard-chaos acceptance tier: a 4-shard coordinator drives four
// flashd-style replicas over the wire session protocol while whole
// shards fail mid-epoch — one replica is killed outright (kill -9:
// listener and connections torn down, state discarded), another is
// partitioned away until its client abandons reconnection, and a third
// runs behind a fault-injected transport (loss, duplication, reorder,
// truncation, mid-frame disconnect) for the whole run. After recovery
// and rebalancing, the aggregated EC-model fingerprint and the verdict
// multiset must equal an uninterrupted single-process run.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	flash "repro"
	"repro/internal/faulty"
	"repro/internal/hs"
	"repro/internal/openr"
	"repro/internal/shard"
	"repro/internal/topo"
	"repro/internal/wire"
)

const shardChaosSubspaces = 4

// shardChaosSeed mirrors the chaos tier's seed resolution: pinned by
// default, overridden by FLASH_CHAOS_SEED (an integer or "random").
func shardChaosSeed(t *testing.T) int64 {
	t.Helper()
	switch v := os.Getenv("FLASH_CHAOS_SEED"); v {
	case "":
		return 3
	case "random":
		seed := time.Now().UnixNano()
		t.Logf("shard-chaos: randomized seed %d (reproduce with FLASH_CHAOS_SEED=%d)", seed, seed)
		return seed
	default:
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FLASH_CHAOS_SEED=%q: %v", v, err)
		}
		t.Logf("shard-chaos: seed %d from FLASH_CHAOS_SEED", seed)
		return seed
	}
}

// shardChaosWorkload is the OpenR control-plane simulation on Internet2
// with a mid-run link failure — the same deterministic stream the
// single-shard chaos tier replays.
func shardChaosWorkload(t *testing.T) (*topo.Graph, *hs.Layout, []flash.Msg) {
	t.Helper()
	g := topo.Internet2()
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 16})
	space := hs.NewSpace(layout)
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	sim := openr.New(g, space, owners, openr.DefaultOptions())
	sim.FailLink(10_000, g.MustByName("chic"), g.MustByName("kans"))
	sim.Run(60_000_000)
	var msgs []flash.Msg
	for _, m := range sim.Messages() {
		wm, err := wire.FromFib(m.Msg.Device, string(m.Msg.Epoch), m.Msg.Updates)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, wm)
	}
	if len(msgs) == 0 {
		t.Fatal("empty shard-chaos workload")
	}
	return g, layout, msgs
}

func shardChaosOpts(g *topo.Graph, layout *hs.Layout) []flash.Option {
	return []flash.Option{
		flash.WithTopo(g),
		flash.WithLayout(layout),
		flash.WithSubspaces(shardChaosSubspaces, ""),
		flash.WithChecks(flash.CheckSpec{Name: "loops", Kind: flash.CheckLoopFree}),
	}
}

// normalizeResult strips the witness header: equivalence classes are
// enumerated in map order, so witness choice varies run to run while
// the verdict multiset is the invariant.
func normalizeResult(r flash.Result) string {
	verdict := r.Verdict.String()
	if r.Loop != flash.LoopUnknown {
		verdict = r.Loop.String()
	}
	return fmt.Sprintf("[%s] check %q subspace %d: %s", r.Epoch, r.Check, r.Subspace, verdict)
}

// shardChaosOracle is the uninterrupted single-process run.
func shardChaosOracle(t *testing.T, g *topo.Graph, layout *hs.Layout, msgs []flash.Msg) ([]string, string) {
	t.Helper()
	sys, err := flash.NewSystem(shardChaosOpts(g, layout)...)
	if err != nil {
		t.Fatal(err)
	}
	var results []string
	for _, m := range msgs {
		rs, err := sys.FeedContext(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			results = append(results, normalizeResult(r))
		}
	}
	fp, err := sys.ModelFingerprint(msgs[len(msgs)-1].Epoch)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(results)
	return results, fp
}

// chaosReplica is one flashd-style verifier process: a subset System
// behind a wire server.
type chaosReplica struct {
	l    net.Listener
	srv  *flash.Server
	addr string
	done chan error
}

func startChaosReplica(t *testing.T, g *topo.Graph, layout *hs.Layout, set []int) *chaosReplica {
	t.Helper()
	opts := append(shardChaosOpts(g, layout), flash.WithSubspaceSet(set...))
	sys, err := flash.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &chaosReplica{l: l, addr: l.Addr().String(), done: make(chan error, 1)}
	r.srv = flash.NewServer(l, sys, nil)
	go func() { r.done <- r.srv.Serve() }()
	return r
}

// kill models kill -9: the listener and every connection die abruptly
// and the replica's state is gone. No graceful drain.
func (r *chaosReplica) kill() {
	r.srv.Close()
	r.l.Close()
}

// TestShardChaosModelEquality is the shard-chaos acceptance test (see
// the package comment for the fault script).
func TestShardChaosModelEquality(t *testing.T) {
	seed := shardChaosSeed(t)
	g, layout, msgs := shardChaosWorkload(t)
	wantV, wantFP := shardChaosOracle(t, g, layout, msgs)
	if len(wantV) == 0 {
		t.Fatal("oracle run produced no verdicts")
	}
	lastEpoch := msgs[len(msgs)-1].Epoch

	// Initial replica per shard, plus fresh replicas minted on every
	// rebalance (a replacement must never reuse a replica that already
	// holds partial state under a dead placement's stream identity).
	sets := shard.Partition(shardChaosSubspaces, 4)
	var (
		replicaMu sync.Mutex
		replicas  []*chaosReplica
		initial   [4]*chaosReplica
	)
	for i, set := range sets {
		r := startChaosReplica(t, g, layout, set)
		initial[i] = r
		replicas = append(replicas, r)
	}
	defer func() {
		replicaMu.Lock()
		defer replicaMu.Unlock()
		for _, r := range replicas {
			r.kill()
		}
	}()

	// Shard 2's transport can be partitioned: while the flag is up,
	// dials fail and live connections are severed.
	var partitioned atomic.Bool
	var partMu sync.Mutex
	var partConns []net.Conn
	partitionDial := func(addr string) (net.Conn, error) {
		if partitioned.Load() {
			return nil, fmt.Errorf("shard-chaos: network partition")
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		partMu.Lock()
		partConns = append(partConns, conn)
		partMu.Unlock()
		return conn, nil
	}

	// Shard 3's transport injects byte- and frame-level faults for the
	// whole run; the session layer must ride them out without the
	// coordinator ever noticing.
	inj := faulty.New(faulty.Config{
		Seed:       seed,
		Drop:       0.12,
		Dup:        0.12,
		Reorder:    0.10,
		Delay:      0.05,
		MaxDelay:   2 * time.Millisecond,
		Truncate:   0.06,
		Disconnect: 0.04,
		MaxFaults:  80,
	})
	faultyDial := func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return inj.WrapConn(conn), nil
	}

	pick := func(a shard.Assignment) (shard.RemoteTarget, error) {
		if a.Rebalance == 0 {
			tgt := shard.RemoteTarget{Addr: initial[a.Shard].addr}
			switch a.Shard {
			case 2:
				tgt.Dial = partitionDial
			case 3:
				tgt.Dial = faultyDial
			}
			return tgt, nil
		}
		r := startChaosReplica(t, g, layout, a.Set)
		replicaMu.Lock()
		replicas = append(replicas, r)
		replicaMu.Unlock()
		return shard.RemoteTarget{Addr: r.addr}, nil
	}

	var (
		resMu   sync.Mutex
		results []string
	)
	c, err := shard.New(shard.Config{
		Subspaces: shardChaosSubspaces,
		Field:     "dst",
		FieldBits: layout.FieldBits("dst"),
		Sets:      sets,
		Factory: shard.RemoteFactory(pick, wire.ClientOptions{
			Stream:        "shard-chaos",
			Reconnect:     true,
			BackoffMin:    time.Millisecond,
			BackoffMax:    10 * time.Millisecond,
			MaxAttempts:   5,
			ResendTimeout: 200 * time.Millisecond,
			Rand:          rand.New(rand.NewSource(seed)),
		}),
		OnResult: func(r flash.Result) {
			resMu.Lock()
			results = append(results, normalizeResult(r))
			resMu.Unlock()
		},
		DrainTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	third := len(msgs) / 3
	feed := func(ms []flash.Msg) {
		t.Helper()
		for _, m := range ms {
			if _, err := c.FeedContext(context.Background(), m); err != nil {
				t.Fatal(err)
			}
		}
	}

	feed(msgs[:third])
	// kill -9 shard 1's replica mid-epoch.
	initial[1].kill()
	feed(msgs[third : 2*third])
	// Partition shard 2 away from its replica.
	partitioned.Store(true)
	partMu.Lock()
	for _, conn := range partConns {
		conn.Close()
	}
	partMu.Unlock()
	feed(msgs[2*third:])

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v (status %+v)", err, c.Status())
	}
	fp, err := c.ModelFingerprint(ctx, lastEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if fp != wantFP {
		t.Fatalf("sharded EC fingerprint diverges from single-process run (status %+v)", c.Status())
	}

	resMu.Lock()
	got := append([]string(nil), results...)
	resMu.Unlock()
	sort.Strings(got)
	if len(got) != len(wantV) {
		t.Fatalf("%d verdicts, single-process run has %d (status %+v)", len(got), len(wantV), c.Status())
	}
	for i := range wantV {
		if got[i] != wantV[i] {
			t.Fatalf("verdict multiset diverges at %d:\n  got:  %s\n  want: %s", i, got[i], wantV[i])
		}
	}

	// Coverage gate: the fault script must actually have fired — the
	// killed and partitioned shards rebalanced, the fault-injected one
	// survived in place.
	st := c.Status()
	if st.Shards[1].Rebalances == 0 {
		t.Fatal("killed shard 1 never rebalanced — the kill did not bite")
	}
	if st.Shards[2].Rebalances == 0 {
		t.Fatal("partitioned shard 2 never rebalanced — the partition did not bite")
	}
	if fs := inj.Stats(); fs.Total() == 0 {
		t.Fatal("fault injector idle — shard 3 transport faults did not fire")
	}
	for _, s := range st.Shards {
		if !s.Healthy {
			t.Fatalf("shard %d unhealthy after recovery (status %+v)", s.ID, st)
		}
	}
}

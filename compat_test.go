package flash

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fib"
	"repro/internal/obs"
)

// This file is the dedicated coverage for the deprecated compatibility
// wrappers. Every other caller in the module has migrated to the
// replacement API (nodeprecated enforces that); these tests keep the
// wrappers honest until they are removed.

// TestCompatFeedWrappers: System.Feed and Pipeline.Feed are exactly
// their FeedContext counterparts with a background context.
//
//flashvet:allow nodeprecated dedicated wrapper coverage; all other callers use FeedContext
func TestCompatFeedWrappers(t *testing.T) {
	sys := reachSys(t)
	if _, err := sys.Feed(Msg{Device: 0, Epoch: "e1",
		Updates: []Update{wildcard(1, Forward(1))}}); err != nil {
		t.Fatalf("System.Feed: %v", err)
	}

	p := NewPipeline(reachSys(t), 4)
	if err := p.Feed(Msg{Device: 0, Epoch: "e1",
		Updates: []Update{wildcard(1, Forward(1))}}); err != nil {
		t.Fatalf("Pipeline.Feed: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Feed(Msg{Device: 1, Epoch: "e1",
		Updates: []Update{wildcard(2, Forward(2))}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Pipeline.Feed after Close: %v, want ErrClosed", err)
	}
}

// TestCompatStatsGetters: each legacy getter mirrors one StatsSnapshot
// field.
//
//flashvet:allow nodeprecated dedicated wrapper coverage; all other callers use StatsSnapshot
func TestCompatStatsGetters(t *testing.T) {
	sys := reachSys(t)
	feedLine(t, sys, "e1", Forward(2))
	st := sys.StatsSnapshot()
	if got := sys.SchedulerStats(); got != st.Scheduler {
		t.Errorf("SchedulerStats = %+v, want %+v", got, st.Scheduler)
	}
	if got := sys.CacheStats(); got.Hits+got.Misses < st.Cache.Hits+st.Cache.Misses {
		t.Errorf("CacheStats lookups went backwards: %+v then %+v", st.Cache, got)
	}
	if got := sys.GCStats(); got.Runs < st.GC.Runs {
		t.Errorf("GCStats runs went backwards: %+v then %+v", st.GC, got)
	}

	b := NewModelBuilder(WithTopo(lineTopo()), WithLayout(dst8))
	if err := b.ApplyBlock([]DeviceBlock{{Device: 0,
		Updates: []Update{wildcard(1, Forward(1))}}}); err != nil {
		t.Fatal(err)
	}
	bst := b.StatsSnapshot()
	if got := b.ECs(); got != bst.ECs {
		t.Errorf("ECs = %d, want %d", got, bst.ECs)
	}
	if got := b.PredicateOps(); got < bst.PredicateOps {
		t.Errorf("PredicateOps went backwards: %d then %d", bst.PredicateOps, got)
	}
	if got := b.MemoryProxy(); got <= 0 || bst.MemoryNodes <= 0 {
		t.Errorf("MemoryProxy = %d, StatsSnapshot().MemoryNodes = %d, want both > 0", got, bst.MemoryNodes)
	}
	if got := b.Stats(); got.Updates != bst.Transform.Updates {
		t.Errorf("Stats().Updates = %d, want %d", got.Updates, bst.Transform.Updates)
	}
}

// TestCompatAdminHandler: the legacy constructor is NewAdminHandler
// with metrics and health options.
//
//flashvet:allow nodeprecated dedicated wrapper coverage; all other callers use NewAdminHandler
func TestCompatAdminHandler(t *testing.T) {
	reg := obs.NewRegistry("compat")
	srv := httptest.NewServer(AdminHandler(reg))
	defer srv.Close()
	body := get(t, srv.URL+"/healthz")
	if strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}
}

// TestWhatIfErrorPathReleasesCapture: a what-if whose hypothetical
// block fails to apply must not pin the forked model — after the error
// return and Release, a forced GC reclaims the fork's nodes. Regression
// for the snapleak audit: WhatIf releases its capture on every error
// return, and whatIf's transient fork dies with the worker mutex.
func TestWhatIfErrorPathReleasesCapture(t *testing.T) {
	sys := reachSys(t)
	feedLine(t, sys, "e1", Forward(2))

	// The block first inserts a rule with a novel prefix — compiling it
	// mints fresh BDD nodes on the fork — then deletes a rule the
	// captured model never held, failing ApplyBlock after the fork has
	// allocated.
	novel := Update{Op: fib.Insert, Rule: Rule{ID: 998, Pri: 9, Action: Drop,
		Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0xA5, Len: 8}}}}
	miss := wildcard(999, Drop)
	miss.Op = fib.Delete
	blocks := []DeviceBlock{{Device: 1, Updates: []Update{novel, miss}}}
	if _, err := sys.WhatIf(context.Background(), blocks); err == nil {
		t.Fatal("WhatIf deleting a missing rule: expected error")
	}
	if n := sys.snapCount.Load(); n != 0 {
		t.Fatalf("snapshots still registered after failed WhatIf: %d", n)
	}

	// The failed fork plus verifier state is garbage now; a forced
	// collection must find it.
	before := sys.StatsSnapshot().GC
	if reclaimed := sys.GC(); reclaimed <= 0 {
		t.Fatalf("GC after failed WhatIf reclaimed %d nodes, want > 0", reclaimed)
	}
	after := sys.StatsSnapshot().GC
	if after.Runs <= before.Runs || after.ReclaimedNodes <= before.ReclaimedNodes {
		t.Fatalf("GCStats did not advance: %+v then %+v", before, after)
	}

	// The failure left live verification untouched.
	rs, err := sys.WhatIf(context.Background(), []DeviceBlock{{Device: 1,
		Updates: []Update{{Op: fib.Insert, Rule: Rule{ID: 100, Pri: 10, Action: Drop,
			Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}}}}}})
	if err != nil {
		t.Fatalf("WhatIf after failed WhatIf: %v", err)
	}
	if len(rs) == 0 {
		t.Fatal("WhatIf after failed WhatIf returned no results")
	}
}

package flash

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/obs"
)

// Health is one component's degradation report for /healthz. The zero
// value means healthy.
type Health struct {
	Degraded bool
	Reasons  []string
}

// merge folds another component's report into h.
func (h *Health) merge(o Health) {
	if o.Degraded {
		h.Degraded = true
		h.Reasons = append(h.Reasons, o.Reasons...)
	}
}

// AdminOption configures NewAdminHandler.
type AdminOption interface {
	applyAdmin(*adminOpts)
}

// adminOptionFunc adapts a plain function to the AdminOption interface.
type adminOptionFunc func(*adminOpts)

func (f adminOptionFunc) applyAdmin(o *adminOpts) { f(o) }

type adminOpts struct {
	reg       *obs.Registry
	health    []func() Health
	sys       *System
	builder   *ModelBuilder
	subBuffer int
}

// WithAdminMetrics attaches the observability registry served by
// /metrics (and published under expvar).
func WithAdminMetrics(reg *obs.Registry) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.reg = reg })
}

// WithAdminHealth appends health sources polled by /healthz (e.g.
// System.Health, Server.Health).
func WithAdminHealth(health ...func() Health) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.health = append(o.health, health...) })
}

// WithAdminSystem mounts the management API (/v1/stats, /v1/specs,
// /v1/whatif, /v1/subscriptions) over a running System.
func WithAdminSystem(sys *System) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.sys = sys })
}

// WithAdminBuilder serves /v1/stats from a ModelBuilder (for offline
// deployments without a System).
func WithAdminBuilder(b *ModelBuilder) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.builder = b })
}

// WithAdminSubscriptionBuffer bounds each SSE subscription's delivery
// buffer (default 64 events).
func WithAdminSubscriptionBuffer(n int) AdminOption {
	return adminOptionFunc(func(o *adminOpts) {
		if n > 0 {
			o.subBuffer = n
		}
	})
}

// NewAdminHandler serves the operational endpoints of a Flash
// deployment, versioned under /v1 with a uniform JSON error envelope
// ({"error": {"code", "message"}}) on failures:
//
//	/v1/healthz        liveness/degradation probe (text)
//	/v1/metrics        the observability registry as indented JSON
//	/v1/stats          StatsSnapshot of the mounted System (or builder)
//	/v1/specs          configured checks merged with current verdicts
//	/v1/whatif         POST a what-if transaction (see api.go for shapes)
//	/v1/subscriptions  verdict snapshot (JSON) or live push (SSE)
//
// /metrics and /healthz remain unversioned aliases for scrapers, and
// the standard debug endpoints (/debug/vars, /debug/pprof/*) are always
// mounted. cmd/flashd mounts the handler on the -admin listener.
//
// Health sources are polled on each /healthz request: all healthy
// yields "ok"; any degradation yields "degraded" plus one reason per
// line. The status code stays 200 either way — degradation means
// reduced coverage (a quarantined subspace or device), not death.
func NewAdminHandler(opts ...AdminOption) http.Handler {
	o := adminOpts{subBuffer: 64}
	for _, opt := range opts {
		opt.applyAdmin(&o)
	}
	publishExpvar(o.reg)
	h := &apiHandler{opts: o}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/v1/healthz", h.healthz)
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/v1/metrics", h.metrics)
	mux.HandleFunc("/v1/stats", h.stats)
	mux.HandleFunc("/v1/specs", h.specs)
	mux.HandleFunc("/v1/whatif", h.whatIf)
	mux.HandleFunc("/v1/subscriptions", h.subscriptions)
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, http.StatusNotFound, "not_found", "unknown endpoint "+r.URL.Path)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminHandler is the original positional constructor.
//
// Deprecated: use NewAdminHandler(WithAdminMetrics(reg),
// WithAdminHealth(health...)) — and WithAdminSystem to mount the /v1
// management API.
func AdminHandler(reg *obs.Registry, health ...func() Health) http.Handler {
	return NewAdminHandler(WithAdminMetrics(reg), WithAdminHealth(health...))
}

func (h *apiHandler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var agg Health
	for _, src := range h.opts.health {
		if src != nil {
			agg.merge(src())
		}
	}
	if !agg.Degraded {
		w.Write([]byte("ok\n"))
		return
	}
	w.Write([]byte("degraded\n"))
	for _, r := range agg.Reasons {
		w.Write([]byte(r + "\n"))
	}
}

func (h *apiHandler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h.opts.reg.Snapshot())
}

// expvar publication is process-global and panics on duplicate names, so
// each registry is published at most once under "flash.<name>"; a second
// registry with the same name is skipped (it still appears on /metrics).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

func publishExpvar(reg *obs.Registry) {
	if reg == nil {
		return
	}
	name := "flash." + reg.Name()
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

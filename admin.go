package flash

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/obs"
)

// AdminHandler serves the operational endpoints of a Flash deployment:
//
//	/metrics         the observability registry as indented JSON
//	/healthz         liveness probe ("ok")
//	/debug/vars      expvar (includes the registry, memstats, cmdline)
//	/debug/pprof/*   the standard Go profiling endpoints
//
// cmd/flashd mounts it on the -admin listener; tests mount it on an
// httptest server. reg may be nil, in which case /metrics serves an
// empty object and the debug endpoints still work.
func AdminHandler(reg *obs.Registry) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvar publication is process-global and panics on duplicate names, so
// each registry is published at most once under "flash.<name>"; a second
// registry with the same name is skipped (it still appears on /metrics).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

func publishExpvar(reg *obs.Registry) {
	if reg == nil {
		return
	}
	name := "flash." + reg.Name()
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

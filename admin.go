package flash

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/obs"
)

// Health is one component's degradation report for /healthz. The zero
// value means healthy.
type Health struct {
	Degraded bool
	Reasons  []string
}

// merge folds another component's report into h.
func (h *Health) merge(o Health) {
	if o.Degraded {
		h.Degraded = true
		h.Reasons = append(h.Reasons, o.Reasons...)
	}
}

// AdminOption configures NewAdminHandler.
type AdminOption interface {
	applyAdmin(*adminOpts)
}

// adminOptionFunc adapts a plain function to the AdminOption interface.
type adminOptionFunc func(*adminOpts)

func (f adminOptionFunc) applyAdmin(o *adminOpts) { f(o) }

type adminOpts struct {
	reg        *obs.Registry
	health     []func() Health
	sys        *System
	builder    *ModelBuilder
	subBuffer  int
	checkpoint func() (CheckpointInfo, error)
	restoring  func() (pending, preloaded int)
	shards     func() any
}

// WithAdminMetrics attaches the observability registry served by
// /metrics (and published under expvar).
func WithAdminMetrics(reg *obs.Registry) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.reg = reg })
}

// WithAdminHealth appends health sources polled by /healthz (e.g.
// System.Health, Server.Health).
func WithAdminHealth(health ...func() Health) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.health = append(o.health, health...) })
}

// WithAdminSystem mounts the management API (/v1/stats, /v1/specs,
// /v1/whatif, /v1/subscriptions) over a running System.
func WithAdminSystem(sys *System) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.sys = sys })
}

// WithAdminBuilder serves /v1/stats from a ModelBuilder (for offline
// deployments without a System).
func WithAdminBuilder(b *ModelBuilder) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.builder = b })
}

// WithAdminCheckpoint mounts POST /v1/checkpoint: each request runs fn
// (typically Server.Checkpoint or System.Checkpoint bound to the
// configured directory) and returns the CheckpointInfo as JSON. Without
// this option the endpoint answers 404.
func WithAdminCheckpoint(fn func() (CheckpointInfo, error)) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.checkpoint = fn })
}

// WithAdminRestoring wires warm-restart progress (typically
// Server.RestoreProgress) into /v1/healthz: while any
// checkpoint-restored agent stream has not yet reconnected, the probe
// answers 503 with first line "restoring" and a progress line, so
// load balancers hold traffic until replay has caught up.
func WithAdminRestoring(fn func() (pending, preloaded int)) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.restoring = fn })
}

// WithAdminShards mounts GET /v1/shards: each request runs fn
// (typically the shard coordinator's Status method) and returns its
// value as JSON. The parameter is an untyped thunk so the root package
// never depends on the coordinator's types — flashcoord binds the two.
// Without this option the endpoint answers 404.
func WithAdminShards(fn func() any) AdminOption {
	return adminOptionFunc(func(o *adminOpts) { o.shards = fn })
}

// WithAdminSubscriptionBuffer bounds each SSE subscription's delivery
// buffer (default 64 events).
func WithAdminSubscriptionBuffer(n int) AdminOption {
	return adminOptionFunc(func(o *adminOpts) {
		if n > 0 {
			o.subBuffer = n
		}
	})
}

// NewAdminHandler serves the operational endpoints of a Flash
// deployment, versioned under /v1 with a uniform JSON error envelope
// ({"error": {"code", "message"}}) on failures:
//
//	/v1/healthz        liveness/degradation probe (text)
//	/v1/metrics        the observability registry as indented JSON
//	/v1/stats          StatsSnapshot of the mounted System (or builder)
//	/v1/specs          configured checks merged with current verdicts
//	/v1/whatif         POST a what-if transaction (see api.go for shapes)
//	/v1/subscriptions  verdict snapshot (JSON) or live push (SSE)
//	/v1/checkpoint     POST: write a checkpoint now (WithAdminCheckpoint)
//	/v1/shards         shard coordinator placement/lag status (WithAdminShards)
//
// /metrics and /healthz remain unversioned aliases for scrapers, and
// the standard debug endpoints (/debug/vars, /debug/pprof/*) are always
// mounted. cmd/flashd mounts the handler on the -admin listener.
//
// Health sources are polled on each /healthz request: all healthy
// yields "ok"; any degradation yields "degraded" plus one reason per
// line. The status code stays 200 either way — degradation means
// reduced coverage (a quarantined subspace or device), not death.
// The one exception is a warm restart still waiting for restored agent
// streams to reconnect (WithAdminRestoring): that yields 503 with
// "restoring" and a replay-progress line until the suffix catches up.
func NewAdminHandler(opts ...AdminOption) http.Handler {
	o := adminOpts{subBuffer: 64}
	for _, opt := range opts {
		opt.applyAdmin(&o)
	}
	publishExpvar(o.reg)
	h := &apiHandler{opts: o}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/v1/healthz", h.healthz)
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/v1/metrics", h.metrics)
	mux.HandleFunc("/v1/stats", h.stats)
	mux.HandleFunc("/v1/specs", h.specs)
	mux.HandleFunc("/v1/whatif", h.whatIf)
	mux.HandleFunc("/v1/subscriptions", h.subscriptions)
	mux.HandleFunc("/v1/checkpoint", h.checkpoint)
	mux.HandleFunc("/v1/shards", h.shards)
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, http.StatusNotFound, "not_found", "unknown endpoint "+r.URL.Path)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminHandler is the original positional constructor.
//
// Deprecated: use NewAdminHandler(WithAdminMetrics(reg),
// WithAdminHealth(health...)) — and WithAdminSystem to mount the /v1
// management API.
func AdminHandler(reg *obs.Registry, health ...func() Health) http.Handler {
	return NewAdminHandler(WithAdminMetrics(reg), WithAdminHealth(health...))
}

func (h *apiHandler) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// A warm restart that is still waiting for checkpoint-restored agent
	// streams to reconnect is not ready: the model is valid but trails
	// the network until the replay suffix arrives. Unlike degradation
	// this is a 503 — it clears by itself and traffic should wait.
	if h.opts.restoring != nil {
		if pending, preloaded := h.opts.restoring(); pending > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("restoring\n"))
			fmt.Fprintf(w, "replaying: %d/%d restored streams reconnected\n", preloaded-pending, preloaded)
			return
		}
	}
	var agg Health
	for _, src := range h.opts.health {
		if src != nil {
			agg.merge(src())
		}
	}
	if !agg.Degraded {
		w.Write([]byte("ok\n"))
		return
	}
	w.Write([]byte("degraded\n"))
	for _, r := range agg.Reasons {
		w.Write([]byte(r + "\n"))
	}
}

// shards serves GET /v1/shards: the coordinator's placement status
// (shard → owned subspaces, health, log lag, rebalance count) from the
// thunk mounted by WithAdminShards.
func (h *apiHandler) shards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	if h.opts.shards == nil {
		writeAPIError(w, http.StatusNotFound, "not_found", "no shard coordinator mounted on this admin handler")
		return
	}
	writeAPIJSON(w, h.opts.shards())
}

// apiCheckpointInfo is the JSON shape of a completed checkpoint write.
type apiCheckpointInfo struct {
	Path      string `json:"path"`
	Bytes     int    `json:"bytes"`
	Subspaces int    `json:"subspaces"`
	Streams   int    `json:"streams"`
	TookNs    int64  `json:"took_ns"`
}

func (h *apiHandler) checkpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	if h.opts.checkpoint == nil {
		writeAPIError(w, http.StatusNotFound, "not_found", "checkpointing not configured (start with -checkpoint-dir)")
		return
	}
	info, err := h.opts.checkpoint()
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "checkpoint_failed", err.Error())
		return
	}
	writeAPIJSON(w, apiCheckpointInfo{
		Path:      info.Path,
		Bytes:     info.Bytes,
		Subspaces: info.Subspaces,
		Streams:   info.Streams,
		TookNs:    info.Took.Nanoseconds(),
	})
}

func (h *apiHandler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h.opts.reg.Snapshot())
}

// expvar publication is process-global and panics on duplicate names, so
// each registry is published at most once under "flash.<name>"; a second
// registry with the same name is skipped (it still appears on /metrics).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

func publishExpvar(reg *obs.Registry) {
	if reg == nil {
		return
	}
	name := "flash." + reg.Name()
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

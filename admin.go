package flash

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/obs"
)

// Health is one component's degradation report for /healthz. The zero
// value means healthy.
type Health struct {
	Degraded bool
	Reasons  []string
}

// merge folds another component's report into h.
func (h *Health) merge(o Health) {
	if o.Degraded {
		h.Degraded = true
		h.Reasons = append(h.Reasons, o.Reasons...)
	}
}

// AdminHandler serves the operational endpoints of a Flash deployment:
//
//	/metrics         the observability registry as indented JSON
//	/healthz         liveness/degradation probe
//	/debug/vars      expvar (includes the registry, memstats, cmdline)
//	/debug/pprof/*   the standard Go profiling endpoints
//
// cmd/flashd mounts it on the -admin listener; tests mount it on an
// httptest server. reg may be nil, in which case /metrics serves an
// empty object and the debug endpoints still work.
//
// health sources (e.g. System.Health, Server.Health) are polled on each
// /healthz request: all healthy yields "ok"; any degradation yields
// "degraded" followed by one reason per line. The process is still
// serving either way, so the status code stays 200 — degradation means
// reduced coverage (a quarantined subspace or device), not death.
func AdminHandler(reg *obs.Registry, health ...func() Health) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var agg Health
		for _, src := range health {
			if src != nil {
				agg.merge(src())
			}
		}
		if !agg.Degraded {
			w.Write([]byte("ok\n"))
			return
		}
		w.Write([]byte("degraded\n"))
		for _, r := range agg.Reasons {
			w.Write([]byte(r + "\n"))
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvar publication is process-global and panics on duplicate names, so
// each registry is published at most once under "flash.<name>"; a second
// registry with the same name is skipped (it still appears on /metrics).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

func publishExpvar(reg *obs.Registry) {
	if reg == nil {
		return
	}
	name := "flash." + reg.Name()
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

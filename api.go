package flash

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fib"
)

// apiHandler implements the /v1 management API mounted by
// NewAdminHandler. Every failure is reported as the uniform envelope
//
//	{"error": {"code": "<machine-readable>", "message": "<human>"}}
//
// so clients can switch on code without parsing prose.
type apiHandler struct {
	opts adminOpts
}

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": {Code: code, Message: msg}})
}

func writeAPIJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ---- JSON shapes ----

// apiMatch mirrors FieldMatch: {"field":"dst","kind":"prefix",
// "value":167772160,"len":8} or {"kind":"ternary","value":…,"mask":…}.
type apiMatch struct {
	Field string `json:"field"`
	Kind  string `json:"kind"` // "prefix" | "ternary"
	Value uint64 `json:"value"`
	Len   int    `json:"len,omitempty"`
	Mask  uint64 `json:"mask,omitempty"`
}

// apiRule mirrors Rule with the action as a string: "drop", "none", or
// "fwd:<device>".
type apiRule struct {
	ID     int64      `json:"id"`
	Pri    int32      `json:"pri"`
	Action string     `json:"action"`
	Match  []apiMatch `json:"match,omitempty"`
}

// apiUpdate is one rule update: {"op":"insert","rule":{…}}.
type apiUpdate struct {
	Op   string  `json:"op"` // "insert" | "delete"
	Rule apiRule `json:"rule"`
}

// apiBlock is one device's update block in a what-if request.
type apiBlock struct {
	Device  uint32      `json:"device"`
	Updates []apiUpdate `json:"updates"`
}

type whatIfRequest struct {
	Blocks []apiBlock `json:"blocks"`
}

// apiResult is one verification result with verdicts rendered as
// strings.
type apiResult struct {
	Subspace int      `json:"subspace"`
	Epoch    string   `json:"epoch"`
	Check    string   `json:"check"`
	Verdict  string   `json:"verdict,omitempty"`
	Loop     string   `json:"loop,omitempty"`
	Witness  []uint64 `json:"witness,omitempty"`
}

func resultToAPI(r Result) apiResult {
	out := apiResult{
		Subspace: r.Subspace,
		Epoch:    r.Epoch,
		Check:    r.Check,
		Witness:  r.Witness,
	}
	if r.Loop != LoopUnknown {
		out.Loop = r.Loop.String()
	} else {
		out.Verdict = r.Verdict.String()
	}
	return out
}

func actionString(a Action) string {
	if d, ok := a.NextHop(); ok {
		return "fwd:" + strconv.FormatUint(uint64(d), 10)
	}
	if a == Drop {
		return "drop"
	}
	return "none"
}

func parseAction(s string) (Action, error) {
	switch {
	case s == "drop":
		return Drop, nil
	case s == "none" || s == "":
		return None, nil
	case strings.HasPrefix(s, "fwd:"):
		d, err := strconv.ParseUint(s[len("fwd:"):], 10, 32)
		if err != nil {
			return None, fmt.Errorf("bad forward target in action %q", s)
		}
		return fib.Forward(DeviceID(d)), nil
	default:
		return None, fmt.Errorf("unknown action %q (want \"drop\", \"none\", or \"fwd:<device>\")", s)
	}
}

func (m apiMatch) toDesc() (FieldMatch, error) {
	fm := FieldMatch{Field: m.Field, Value: m.Value, Len: m.Len, Mask: m.Mask}
	switch m.Kind {
	case "prefix", "":
		fm.Kind = fib.MatchPrefix
	case "ternary":
		fm.Kind = fib.MatchTernary
	default:
		return fm, fmt.Errorf("unknown match kind %q (want \"prefix\" or \"ternary\")", m.Kind)
	}
	return fm, nil
}

func (b apiBlock) toBlock() (DeviceBlock, error) {
	out := DeviceBlock{Device: DeviceID(b.Device)}
	for i, u := range b.Updates {
		var op fib.Op
		switch u.Op {
		case "insert", "":
			op = fib.Insert
		case "delete":
			op = fib.Delete
		default:
			return out, fmt.Errorf("update %d: unknown op %q (want \"insert\" or \"delete\")", i, u.Op)
		}
		action, err := parseAction(u.Rule.Action)
		if err != nil {
			return out, fmt.Errorf("update %d: %w", i, err)
		}
		var desc MatchDesc
		for _, m := range u.Rule.Match {
			fm, err := m.toDesc()
			if err != nil {
				return out, fmt.Errorf("update %d: %w", i, err)
			}
			desc = append(desc, fm)
		}
		out.Updates = append(out.Updates, Update{
			Op: op,
			Rule: Rule{
				ID:     u.Rule.ID,
				Pri:    u.Rule.Pri,
				Action: action,
				Desc:   desc,
			},
		})
	}
	return out, nil
}

// ---- endpoints ----

// stats serves /v1/stats: the StatsSnapshot of the mounted System, or
// of the builder when only a builder is mounted.
func (h *apiHandler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	switch {
	case h.opts.sys != nil:
		writeAPIJSON(w, h.opts.sys.StatsSnapshot())
	case h.opts.builder != nil:
		writeAPIJSON(w, h.opts.builder.StatsSnapshot())
	default:
		writeAPIError(w, http.StatusServiceUnavailable, "no_system", "no system or builder mounted on this admin handler")
	}
}

func checkKindString(k CheckKind) string {
	switch k {
	case CheckReach:
		return "reach"
	case CheckLoopFree:
		return "loopfree"
	case CheckAnycast:
		return "anycast"
	case CheckMulticast:
		return "multicast"
	case CheckCoverage:
		return "coverage"
	default:
		return "unknown"
	}
}

type apiSpec struct {
	Name     string          `json:"name"`
	Kind     string          `json:"kind"`
	Expr     string          `json:"expr,omitempty"`
	Sources  []string        `json:"sources,omitempty"`
	Dest     string          `json:"dest,omitempty"`
	Dests    []string        `json:"dests,omitempty"`
	Verdicts []VerdictStatus `json:"verdicts,omitempty"`
}

// specs serves /v1/specs: the configured check specs, each merged with
// its current per-subspace verdicts.
func (h *apiHandler) specs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	if h.opts.sys == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "no_system", "no system mounted on this admin handler")
		return
	}
	byCheck := make(map[string][]VerdictStatus)
	for _, vs := range h.opts.sys.Verdicts() {
		byCheck[vs.Spec] = append(byCheck[vs.Spec], vs)
	}
	var out []apiSpec
	for _, cs := range h.opts.sys.Checks() {
		out = append(out, apiSpec{
			Name:     cs.Name,
			Kind:     checkKindString(cs.Kind),
			Expr:     cs.Expr,
			Sources:  cs.Sources,
			Dest:     cs.Dest,
			Dests:    cs.Dests,
			Verdicts: byCheck[cs.Name],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeAPIJSON(w, map[string]any{"specs": out})
}

// maxWhatIfBody bounds a what-if request body (1 MiB covers thousands
// of updates; anything larger is almost certainly a mistake).
const maxWhatIfBody = 1 << 20

// whatIf serves POST /v1/whatif: decode the hypothetical update blocks,
// run them as a transaction against a fresh snapshot, and return the
// results the hypothetical network would produce. Live state and
// subscriptions never observe the transaction.
func (h *apiHandler) whatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	if h.opts.sys == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "no_system", "no system mounted on this admin handler")
		return
	}
	var req whatIfRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxWhatIfBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, "bad_request", "decode body: "+err.Error())
		return
	}
	if len(req.Blocks) == 0 {
		writeAPIError(w, http.StatusBadRequest, "bad_request", "no blocks in request")
		return
	}
	blocks := make([]DeviceBlock, 0, len(req.Blocks))
	for i, b := range req.Blocks {
		db, err := b.toBlock()
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("block %d: %v", i, err))
			return
		}
		blocks = append(blocks, db)
	}
	results, err := h.opts.sys.WhatIf(r.Context(), blocks)
	if err != nil {
		switch err {
		case ErrNoEpoch:
			writeAPIError(w, http.StatusConflict, "no_epoch", "no live verifier to snapshot yet; feed updates first")
		case r.Context().Err():
			writeAPIError(w, http.StatusRequestTimeout, "canceled", err.Error())
		default:
			writeAPIError(w, http.StatusInternalServerError, "whatif_failed", err.Error())
		}
		return
	}
	out := make([]apiResult, 0, len(results))
	for _, res := range results {
		out = append(out, resultToAPI(res))
	}
	writeAPIJSON(w, map[string]any{"results": out})
}

// subscriptions serves /v1/subscriptions. A plain GET returns the last
// published verdict per (spec, subspace) — the snapshot a client should
// read before trusting change events. With "Accept: text/event-stream"
// it becomes a live push: each verdict change arrives as an SSE event
//
//	id: <seq>
//	event: verdict
//	data: {"seq":…,"spec":…,…}
//
// until the client disconnects. ?spec=<name> filters either mode to one
// check.
func (h *apiHandler) subscriptions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	if h.opts.sys == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "no_system", "no system mounted on this admin handler")
		return
	}
	spec := r.URL.Query().Get("spec")
	if !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		statuses := h.opts.sys.Verdicts()
		if spec != "" {
			kept := statuses[:0]
			for _, vs := range statuses {
				if vs.Spec == spec {
					kept = append(kept, vs)
				}
			}
			statuses = kept
		}
		writeAPIJSON(w, map[string]any{"verdicts": statuses})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, http.StatusNotImplemented, "no_streaming", "response writer does not support streaming")
		return
	}
	sub := h.opts.sys.SubscribeVerdicts(spec, h.opts.subBuffer)
	defer sub.Cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			payload, err := json.Marshal(sseEvent(ev))
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: verdict\ndata: %s\n\n", ev.Seq, payload); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// sseVerdict is the SSE data payload for one verdict event.
type sseVerdict struct {
	Seq         uint64   `json:"seq"`
	Spec        string   `json:"spec"`
	Subspace    int      `json:"subspace"`
	Epoch       string   `json:"epoch"`
	Verdict     string   `json:"verdict,omitempty"`
	Loop        string   `json:"loop,omitempty"`
	PrevVerdict string   `json:"prev_verdict,omitempty"`
	PrevLoop    string   `json:"prev_loop,omitempty"`
	First       bool     `json:"first,omitempty"`
	Witness     []uint64 `json:"witness,omitempty"`
}

func sseEvent(ev VerdictEvent) sseVerdict {
	out := sseVerdict{
		Seq:      ev.Seq,
		Spec:     ev.Spec,
		Subspace: ev.Subspace,
		Epoch:    ev.Epoch,
		First:    ev.First,
		Witness:  ev.Witness,
	}
	if ev.Loop != LoopUnknown {
		out.Loop = ev.Loop.String()
	} else {
		out.Verdict = ev.Verdict.String()
	}
	if !ev.First {
		if ev.PrevLoop != LoopUnknown {
			out.PrevLoop = ev.PrevLoop.String()
		} else {
			out.PrevVerdict = ev.PrevVerdict.String()
		}
	}
	return out
}

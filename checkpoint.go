package flash

import (
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/bdd"
	"repro/internal/ce2d"
	"repro/internal/ckpt"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/obs"
	"repro/internal/pat"
	"repro/internal/pred"
	"repro/internal/sched"
)

// This file is the serving-plane half of the checkpoint/restore
// subsystem (package ckpt holds the container format): capture walks
// every healthy subspace under the dispatch barrier and value-copies
// the durable state, so encoding and the fsync+rename dance happen
// after all locks are released and a periodic background checkpoint
// never blocks live ingest for longer than the copy.

// CheckpointInfo describes one completed checkpoint write.
type CheckpointInfo struct {
	// Path is the final (post-rename) checkpoint file.
	Path string
	// Bytes is the encoded container size.
	Bytes int
	// Subspaces counts the subspaces that had a live verifier and were
	// captured; the rest re-ingest from agent replays after a restore.
	Subspaces int
	// Streams counts the wire streams whose sequence state was captured
	// (0 for System.Checkpoint, which has no serving plane).
	Streams int
	// Took is the total capture+encode+fsync duration.
	Took time.Duration
}

// RestoreReport describes how a warm restart went.
type RestoreReport struct {
	// Path is the checkpoint the system was restored from.
	Path string
	// SkippedCorrupt counts newer candidates that were rejected —
	// corrupt, wrong version, or captured under a different config.
	SkippedCorrupt int
	// Subspaces counts subspaces rebuilt from the checkpoint.
	Subspaces int
	// Streams maps wire stream name → next expected sequence number at
	// capture time; the caller preloads the session layer with it
	// (wire.WithStreams) so agents resume from the checkpointed floor.
	Streams map[string]uint64
	// Took is the total load+rebuild duration.
	Took time.Duration
}

// configHash fingerprints the parts of a Config that determine ref
// meaning: the layout (BDD variable order), the subspace partition, and
// the compiled check set. A checkpoint captured under a different hash
// is untrustworthy — its refs would be reinterpreted — so restore skips
// it like a corrupt file.
func configHash(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "flash-ckpt-v1|subspaces=%d|field=%s|nvars=%d",
		cfg.Subspaces, cfg.SubspaceField, cfg.Layout.TotalBits())
	for _, f := range cfg.Layout.Fields() {
		fmt.Fprintf(h, "|field:%s/%d", f.Name, f.Bits)
	}
	for _, cs := range cfg.Checks {
		fmt.Fprintf(h, "|check:%s/%d/%s/%v/%s/%v/%v",
			cs.Name, cs.Kind, cs.Expr, cs.Sources, cs.Dest, cs.Dests, cs.ExitNodes)
	}
	return h.Sum64()
}

// ckptMetrics holds the checkpoint subsystem's observability handles.
// All of them resolve idempotently from the registry, so the struct is
// rebuilt per operation; nil registries yield no-op handles.
type ckptMetrics struct {
	writes         *obs.Counter
	writeErrors    *obs.Counter
	lastBytes      *obs.Gauge
	writeNs        *obs.Histogram
	restores       *obs.Counter
	restoreNs      *obs.Histogram
	skippedCorrupt *obs.Counter
}

func ckptMetricsFrom(reg *obs.Registry) ckptMetrics {
	r := reg.Sub("ckpt")
	return ckptMetrics{
		writes:         r.Counter("bdd_ckpt_writes_total"),
		writeErrors:    r.Counter("bdd_ckpt_write_errors_total"),
		lastBytes:      r.Gauge("bdd_ckpt_last_bytes"),
		writeNs:        r.Histogram("bdd_ckpt_write_ns"),
		restores:       r.Counter("bdd_ckpt_restores_total"),
		restoreNs:      r.Histogram("bdd_ckpt_restore_ns"),
		skippedCorrupt: r.Counter("bdd_ckpt_skipped_corrupt_total"),
	}
}

// capture builds the checkpoint under the dispatch barrier: no
// FeedBatch can interleave between per-subspace captures, so the
// checkpoint is the same consistent cross-subspace cut a Snapshot sees.
// Everything referenced by the returned value is a private copy —
// encoding may proceed after every lock is released, concurrent with
// new feeds and GC.
//
// streams carries the wire session cut (nil when there is no serving
// plane); the caller that owns the wire server captures it atomically
// with this call via wire.Server.SnapshotStreams.
func (s *System) capture(streams map[string]uint64) *ckpt.Checkpoint {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()

	c := &ckpt.Checkpoint{
		Meta: ckpt.Meta{
			CreatedAtUnixNano: time.Now().UnixNano(),
			ConfigHash:        configHash(s.cfg),
			// The global partition count, not the instantiated worker
			// count: a subset-of-subspaces checkpoint (WithSubspaceSet)
			// stays restorable into any other subset of the same
			// partition, which is how shard rebalance transfers state.
			Subspaces: int32(s.cfg.numSubspaces()),
			NVars:     int32(s.cfg.Layout.TotalBits()),
		},
		Streams:  streams,
		Verdicts: s.bus.exportState(),
	}
	for _, w := range s.workers {
		if s.isPoisoned(w.idx) {
			continue
		}
		w.mu.Lock()
		sub, ok := w.captureLocked()
		w.mu.Unlock()
		if ok {
			c.Subspaces = append(c.Subspaces, sub)
		}
	}
	return c
}

// captureLocked copies one subspace's durable state. Callers hold w.mu.
// Every slice that aliases live state the dispatcher or a GC remap may
// rewrite in place (table rules, queued updates) is value-copied here;
// node dumps and EC pairs are copies by construction.
func (w *sysWorker) captureLocked() (ckpt.Subspace, bool) {
	st, ok := w.disp.ExportState()
	if !ok {
		return ckpt.Subspace{}, false
	}
	// The container format serializes BDD node dumps; an atom-backed
	// subspace converts first. Restore always comes back in BDD mode —
	// the cutover is one-way, and a checkpoint is past the guard.
	if w.am != nil {
		w.cutoverLocked()
	}
	v, _ := w.disp.Verifier(st.Epoch)
	trans := v.Transformer()
	model := trans.Model()

	sub := ckpt.Subspace{
		Index:    int32(w.idx),
		Epoch:    string(st.Epoch),
		BDD:      w.space.E.ExportNodes(),
		PAT:      trans.Store.ExportNodes(),
		Universe: int32(model.Universe),
	}
	for vec, p := range model.ECs {
		sub.ECs = append(sub.ECs, ckpt.ECPair{Vec: int32(vec), Pred: int32(p)})
	}
	sort.Slice(sub.ECs, func(i, j int) bool { return sub.ECs[i].Vec < sub.ECs[j].Vec })
	for dev, tb := range trans.ExportTables() {
		sub.Tables = append(sub.Tables, ckpt.DeviceTable{
			Device: int32(dev),
			Rules:  append([]fib.Rule(nil), tb.Rules()...),
		})
	}
	sort.Slice(sub.Tables, func(i, j int) bool { return sub.Tables[i].Device < sub.Tables[j].Device })
	for _, dev := range v.SyncOrder() {
		sub.SyncOrder = append(sub.SyncOrder, int32(dev))
	}
	for dev, e := range st.Tracker.Last {
		sub.TrackerLast = append(sub.TrackerLast, ckpt.DevEpoch{Device: int32(dev), Epoch: string(e)})
	}
	sort.Slice(sub.TrackerLast, func(i, j int) bool { return sub.TrackerLast[i].Device < sub.TrackerLast[j].Device })
	for _, e := range st.Tracker.Active {
		sub.ActiveEpochs = append(sub.ActiveEpochs, string(e))
	}
	for _, e := range st.Tracker.Inactive {
		sub.InactiveEpochs = append(sub.InactiveEpochs, string(e))
	}
	for dev, q := range st.Queues {
		dq := ckpt.DeviceQueue{Device: int32(dev)}
		for _, m := range q {
			dq.Msgs = append(dq.Msgs, ckpt.QueuedMsg{
				Epoch:   string(m.Epoch),
				Updates: append([]fib.Update(nil), m.Updates...),
			})
		}
		sub.Queues = append(sub.Queues, dq)
	}
	sort.Slice(sub.Queues, func(i, j int) bool { return sub.Queues[i].Device < sub.Queues[j].Device })
	for dev, n := range st.Fed {
		sub.Fed = append(sub.Fed, ckpt.DevCount{Device: int32(dev), Count: int32(n)})
	}
	sort.Slice(sub.Fed, func(i, j int) bool { return sub.Fed[i].Device < sub.Fed[j].Device })
	return sub, true
}

// Checkpoint captures the system's durable state and writes it
// crash-consistently into dir (which must exist). Ingest is blocked
// only for the in-memory copy; encoding and fsync happen concurrently
// with new feeds. Serving-plane deployments should use
// Server.Checkpoint instead, which additionally captures and commits
// the wire sequence cut.
func (s *System) Checkpoint(dir string) (CheckpointInfo, error) {
	return s.writeCheckpoint(dir, s.capture(nil))
}

// writeCheckpoint encodes and durably writes an already-captured
// checkpoint, maintaining the bdd_ckpt_* metrics.
func (s *System) writeCheckpoint(dir string, c *ckpt.Checkpoint) (CheckpointInfo, error) {
	m := ckptMetricsFrom(s.cfg.Metrics)
	start := time.Now()
	path, err := ckpt.Save(dir, c)
	if err != nil {
		m.writeErrors.Inc()
		return CheckpointInfo{}, fmt.Errorf("flash: checkpoint: %w", err)
	}
	info := CheckpointInfo{
		Path:      path,
		Subspaces: len(c.Subspaces),
		Streams:   len(c.Streams),
		Took:      time.Since(start),
	}
	if fi, serr := os.Stat(path); serr == nil {
		info.Bytes = int(fi.Size())
	}
	m.writes.Inc()
	m.writeNs.Observe(info.Took)
	m.lastBytes.Set(int64(info.Bytes))
	return info, nil
}

// exportState captures the verdict bus for a checkpoint. The caller
// holds the dispatch barrier, so no publish is in flight.
func (b *verdictBus) exportState() ckpt.VerdictState {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := ckpt.VerdictState{Seq: b.seq}
	for key, vs := range b.last {
		st.Cells = append(st.Cells, ckpt.VerdictCell{
			Spec:     key.spec,
			Subspace: int32(key.subspace),
			Epoch:    vs.epoch,
			Verdict:  int32(vs.verdict),
			Loop:     int32(vs.loop),
			Witness:  append([]uint64(nil), vs.witness...),
		})
	}
	sort.Slice(st.Cells, func(i, j int) bool {
		if st.Cells[i].Spec != st.Cells[j].Spec {
			return st.Cells[i].Spec < st.Cells[j].Spec
		}
		return st.Cells[i].Subspace < st.Cells[j].Subspace
	})
	return st
}

// importState seeds a fresh bus from checkpointed state: restored
// subscribers see flips relative to the pre-crash published verdicts,
// not a replayed burst of "first verdict" events.
func (b *verdictBus) importState(st ckpt.VerdictState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq = st.Seq
	for _, c := range st.Cells {
		b.last[verdictKey{spec: c.Spec, subspace: int(c.Subspace)}] = verdictState{
			epoch:   c.Epoch,
			verdict: Verdict(c.Verdict),
			loop:    LoopResult(c.Loop),
			witness: c.Witness,
		}
	}
}

// Restore builds a System from the newest usable checkpoint in dir,
// configured exactly like NewSystem with the same options. Candidates
// are tried newest-first; a corrupt, wrong-version, or
// config-mismatched file is logged, counted (bdd_ckpt_skipped_corrupt_total),
// and skipped in favor of an older one. When no candidate is usable the
// error wraps ErrNoCheckpoint and the caller falls back to a fresh
// NewSystem plus full re-ingest — Restore never panics on a hostile
// file and never partially applies one.
//
// The report's Streams map carries the wire sequence cut; serving-plane
// callers preload it into the session layer (see Serve's
// CheckpointDir option) so reconnecting agents replay only the
// checkpoint-to-crash suffix.
func Restore(dir string, opts ...Option) (*System, *RestoreReport, error) {
	cfg := buildConfig(opts)
	m := ckptMetricsFrom(cfg.Metrics)
	rep := &RestoreReport{}
	want := configHash(cfg)
	start := time.Now()
	for _, path := range ckpt.Candidates(dir) {
		c, err := ckpt.Load(path)
		if err != nil {
			logfTo(cfg.Logger, "flash: checkpoint %s unusable: %v", path, err)
			m.skippedCorrupt.Inc()
			rep.SkippedCorrupt++
			continue
		}
		if c.Meta.ConfigHash != want {
			logfTo(cfg.Logger, "flash: checkpoint %s captured under different config (hash %x, want %x); skipping", path, c.Meta.ConfigHash, want)
			m.skippedCorrupt.Inc()
			rep.SkippedCorrupt++
			continue
		}
		sys, err := newSystemFromCheckpoint(cfg, c)
		if err != nil {
			logfTo(cfg.Logger, "flash: checkpoint %s failed to restore: %v", path, err)
			m.skippedCorrupt.Inc()
			rep.SkippedCorrupt++
			continue
		}
		rep.Path = path
		rep.Subspaces = len(c.Subspaces)
		rep.Streams = c.Streams
		rep.Took = time.Since(start)
		m.restores.Inc()
		m.restoreNs.Observe(rep.Took)
		logfTo(cfg.Logger, "flash: restored from %s (%d subspaces, %d streams) in %v", path, rep.Subspaces, len(rep.Streams), rep.Took)
		return sys, rep, nil
	}
	return nil, rep, fmt.Errorf("flash: restore from %s: %w", dir, ErrNoCheckpoint)
}

// PruneCheckpoints removes all but the newest keep checkpoints from
// dir, plus any temp files left behind by interrupted writes. keep is
// clamped to at least 1 so a prune can never delete the only restore
// point.
func PruneCheckpoints(dir string, keep int) error {
	return ckpt.Prune(dir, keep)
}

// logfTo logs through an optional logger (nil silences, as everywhere
// in the serving plane).
func logfTo(l *log.Logger, format string, args ...any) {
	if l != nil {
		l.Printf(format, args...)
	}
}

// newSystemFromCheckpoint mirrors NewSystem, but subspaces present in
// the checkpoint are rebuilt from their serialized state: the BDD node
// dump is replayed into a fresh engine (hash-consing makes every
// recorded ref valid again), the PAT store and inverse model are
// reattached, and the most-converged verifier's detection state is
// reconstructed by replaying its device synchronization order.
// Subspaces absent from the checkpoint (no live verifier at capture)
// start fresh, exactly as in NewSystem.
//
// Every recorded ref is validated against the restored stores before
// use; any inconsistency fails the restore (the caller then tries an
// older candidate).
func newSystemFromCheckpoint(cfg Config, c *ckpt.Checkpoint) (*System, error) {
	nglobal := cfg.numSubspaces()
	if int(c.Meta.Subspaces) != nglobal {
		return nil, fmt.Errorf("flash: restore: checkpoint has %d subspaces, config wants %d", c.Meta.Subspaces, nglobal)
	}
	if int(c.Meta.NVars) != cfg.Layout.TotalBits() {
		return nil, fmt.Errorf("flash: restore: checkpoint has %d BDD variables, layout wants %d", c.Meta.NVars, cfg.Layout.TotalBits())
	}
	set, err := cfg.subspaceSet(nglobal)
	if err != nil {
		return nil, err
	}
	byIdx := make(map[int]ckpt.Subspace, len(c.Subspaces))
	for _, sub := range c.Subspaces {
		i := int(sub.Index)
		if i < 0 || i >= nglobal {
			return nil, fmt.Errorf("flash: restore: subspace index %d out of range", i)
		}
		if _, dup := byIdx[i]; dup {
			return nil, fmt.Errorf("flash: restore: duplicate subspace %d", i)
		}
		byIdx[i] = sub
	}

	s := &System{cfg: cfg, poisoned: make(map[int]string)}
	s.bus = newVerdictBus(cfg.Metrics)
	s.bus.importState(c.Verdicts)
	s.workerPanics = cfg.Metrics.Sub("ce2d").Counter("worker_panics")
	// Checkpoint sections outside the configured subspace set are simply
	// not instantiated: a full-set checkpoint restores cleanly into a
	// shard replica owning any subset (and vice versa, with the missing
	// subspaces starting fresh).
	for _, i := range set {
		sub, restored := byIdx[i]
		var space *hs.Space
		if restored {
			e, err := bdd.NewFromNodes(cfg.Layout.TotalBits(), sub.BDD)
			if err != nil {
				return nil, fmt.Errorf("flash: restore subspace %d: %w", i, err)
			}
			space = hs.NewSpaceOn(e, cfg.Layout)
		} else {
			space = hs.NewSpace(cfg.Layout)
		}
		universe := cfg.subspacePreds(space)[i]
		checks, _, err := compileChecks(cfg, func(d MatchDesc) (bdd.Ref, bool) { return space.Compile(d), true })
		if err != nil {
			return nil, err
		}
		// Restored subspaces always come back in BDD mode: the checkpoint
		// holds a BDD node dump (capture converts atom subspaces first).
		w := &sysWorker{cfg: cfg, idx: i, space: space, eng: space.E, universe: universe, checks: checks, budget: cfg.MemoryBudget}
		sreg := cfg.Metrics.Sub("ce2d").Sub("subspace" + strconv.Itoa(i))
		ireg := sreg.Sub("imt")
		factory := func(ce2d.Epoch) *ce2d.Verifier {
			v := ce2d.NewVerifier(ce2d.Config{
				Topo:     cfg.Topo,
				Engine:   w.eng,
				Universe: w.universe,
				Checks:   w.checks,
				Succ:     cfg.Succ,
			})
			v.Transformer().Tag = "ce2d/subspace" + strconv.Itoa(i)
			v.Transformer().Instrument(ireg)
			return v
		}
		if restored {
			w.disp, err = restoreDispatcher(cfg, w, sub, universe, ireg, factory)
			if err != nil {
				return nil, fmt.Errorf("flash: restore subspace %d: %w", i, err)
			}
		} else {
			w.disp = ce2d.NewDispatcher(factory)
		}
		w.disp.Instrument(sreg)
		if sreg != nil {
			w.feedNs = sreg.Histogram("feed_ns")
			w.gcPauseNs = sreg.Histogram("bdd_gc_pause_ns")
			instrumentWorkerEngine(sreg, &w.mu,
				func() (pred.Engine, *pat.Store) { return w.eng, nil },
				func() engineCounterBase { return engineCounterBase{} })
		}
		s.workers = append(s.workers, w)
	}
	s.pool = sched.NewPool(cfg.Workers, len(s.workers))
	s.pool.Instrument(cfg.Metrics.Sub("sched"))
	return s, nil
}

// restoreDispatcher rebuilds one subspace's dispatcher, verifier, and
// Fast IMT state from its checkpoint section. The worker's engine is
// already the restored one (w.space.E).
func restoreDispatcher(cfg Config, w *sysWorker, sub ckpt.Subspace, universe bdd.Ref, ireg *obs.Registry, factory func(ce2d.Epoch) *ce2d.Verifier) (*ce2d.Dispatcher, error) {
	e := w.space.E
	if bdd.Ref(sub.Universe) != universe {
		return nil, fmt.Errorf("universe predicate mismatch (checkpoint %d, config %d)", sub.Universe, universe)
	}
	store, err := pat.NewStoreFromNodes(sub.PAT)
	if err != nil {
		return nil, err
	}
	model := &imt.Model{ECs: make(map[pat.Ref]bdd.Ref, len(sub.ECs)), Universe: universe}
	for _, ec := range sub.ECs {
		vec := pat.Ref(ec.Vec)
		if _, dup := model.ECs[vec]; dup {
			return nil, fmt.Errorf("duplicate EC vector %d", ec.Vec)
		}
		model.ECs[vec] = bdd.Ref(ec.Pred)
	}
	tables := make(map[fib.DeviceID]*fib.Table, len(sub.Tables))
	for _, dt := range sub.Tables {
		dev := fib.DeviceID(dt.Device)
		if _, dup := tables[dev]; dup {
			return nil, fmt.Errorf("duplicate table for device %d", dev)
		}
		tables[dev] = fib.NewTable(dt.Rules...)
	}
	trans, err := imt.RestoreTransformer(e, store, model, tables, "ce2d/subspace"+strconv.Itoa(w.idx))
	if err != nil {
		return nil, err
	}
	trans.Instrument(ireg)

	syncOrder := make([]fib.DeviceID, len(sub.SyncOrder))
	for i, d := range sub.SyncOrder {
		syncOrder[i] = fib.DeviceID(d)
	}
	v, err := ce2d.RestoreVerifier(ce2d.Config{
		Topo:     cfg.Topo,
		Engine:   e,
		Universe: universe,
		Checks:   w.checks,
		Succ:     cfg.Succ,
	}, trans, syncOrder)
	if err != nil {
		return nil, err
	}

	st := ce2d.DispatcherState{
		Tracker: ce2d.TrackerState{Last: make(map[fib.DeviceID]ce2d.Epoch, len(sub.TrackerLast))},
		Epoch:   ce2d.Epoch(sub.Epoch),
		Queues:  make(map[fib.DeviceID][]ce2d.Msg, len(sub.Queues)),
		Fed:     make(map[fib.DeviceID]int, len(sub.Fed)),
	}
	for _, de := range sub.TrackerLast {
		st.Tracker.Last[fib.DeviceID(de.Device)] = ce2d.Epoch(de.Epoch)
	}
	for _, ep := range sub.ActiveEpochs {
		st.Tracker.Active = append(st.Tracker.Active, ce2d.Epoch(ep))
	}
	for _, ep := range sub.InactiveEpochs {
		st.Tracker.Inactive = append(st.Tracker.Inactive, ce2d.Epoch(ep))
	}
	for _, dq := range sub.Queues {
		dev := fib.DeviceID(dq.Device)
		if _, dup := st.Queues[dev]; dup {
			return nil, fmt.Errorf("duplicate queue for device %d", dev)
		}
		var q []ce2d.Msg
		for _, m := range dq.Msgs {
			for _, u := range m.Updates {
				if !e.CheckRef(u.Rule.Match) {
					return nil, fmt.Errorf("queued rule match ref %d for device %d outside restored engine", u.Rule.Match, dev)
				}
			}
			q = append(q, ce2d.Msg{Device: dev, Epoch: ce2d.Epoch(m.Epoch), Updates: m.Updates})
		}
		st.Queues[dev] = q
	}
	for _, dc := range sub.Fed {
		st.Fed[fib.DeviceID(dc.Device)] = int(dc.Count)
	}
	return ce2d.RestoreDispatcher(factory, st, v)
}

// Quickstart: build a four-switch line network, load its FIBs into a
// Flash model builder, and ask point queries against the inverse model;
// then run an online early-detection check on the same network.
package main

import (
	"context"
	"fmt"
	"log"

	flash "repro"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

func main() {
	// 1. Describe the network: a — b — c — d.
	g := topo.New()
	a := g.AddNode("a", topo.RoleSwitch, -1)
	b := g.AddNode("b", topo.RoleSwitch, -1)
	c := g.AddNode("c", topo.RoleSwitch, -1)
	d := g.AddNode("d", topo.RoleSwitch, -1)
	g.AddLink(a, b)
	g.AddLink(b, c)
	g.AddLink(c, d)

	// 2. Describe the packet headers: one 8-bit destination field.
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 8})

	// 3. Build the inverse model from symbolic rules. Each device gets a
	// default drop rule plus a prefix route toward d for 0x80/1.
	builder := flash.NewModelBuilder(flash.Config{Topo: g, Layout: layout, Subspaces: 2})
	upper := flash.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0x80, Len: 1}}
	all := flash.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}
	blocks := []flash.DeviceBlock{
		{Device: a, Updates: []flash.Update{
			{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: flash.Drop, Desc: all}},
			{Op: fib.Insert, Rule: flash.Rule{ID: 2, Pri: 1, Action: flash.Forward(b), Desc: upper}},
		}},
		{Device: b, Updates: []flash.Update{
			{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: flash.Drop, Desc: all}},
			{Op: fib.Insert, Rule: flash.Rule{ID: 2, Pri: 1, Action: flash.Forward(c), Desc: upper}},
		}},
		{Device: c, Updates: []flash.Update{
			{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: flash.Drop, Desc: all}},
			{Op: fib.Insert, Rule: flash.Rule{ID: 2, Pri: 1, Action: flash.Forward(d), Desc: upper}},
		}},
		{Device: d, Updates: []flash.Update{
			{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: flash.Drop, Desc: all}},
			// Forwarding beyond the fabric = local delivery.
			{Op: fib.Insert, Rule: flash.Rule{ID: 2, Pri: 1, Action: flash.Forward(flash.DeviceID(g.N())), Desc: upper}},
		}},
	}
	if err := builder.ApplyBlock(blocks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d equivalence classes over %d subspaces\n",
		builder.StatsSnapshot().ECs, builder.NumSubspaces())
	for _, h := range []uint64{0x90, 0x10} {
		act, err := builder.ActionAt(b, []uint64{h})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("switch b forwards dst=%#x via %v\n", h, act)
	}

	// 4. Online early detection: feed the same FIBs device by device and
	// watch the verdict for "a reaches d" arrive as soon as it is
	// decidable.
	sys, err := flash.NewSystem(flash.Config{
		Topo: g, Layout: layout,
		Checks: []flash.CheckSpec{{
			Name: "a-reaches-d", Kind: flash.CheckReach,
			Expr: "a .* d", Sources: []string{"a"}, Dest: "d",
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, blk := range blocks {
		results, err := sys.FeedContext(context.Background(), flash.Msg{
			Device: blk.Device, Epoch: "boot", Updates: blk.Updates,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Println("early detection:", r)
		}
	}
}

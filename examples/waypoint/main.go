// Waypoint verification: the paper's Figure 3/4 walk-through. Packets
// entering at S toward 10.0.0.0/24 (here: the upper half of an 8-bit
// space, delivered at D) must traverse W or Y. Devices synchronize one by
// one; Flash reports "unsatisfied" consistently as soon as the failure is
// certain — before W, Y and C ever report (Figure 4(b)).
package main

import (
	"context"
	"fmt"
	"log"

	flash "repro"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/topo"
)

func main() {
	// The network of Figure 3.
	g := topo.New()
	ids := map[string]flash.DeviceID{}
	for _, n := range []string{"S", "A", "B", "E", "C", "D", "Y", "W"} {
		ids[n] = g.AddNode(n, topo.RoleSwitch, -1)
	}
	link := func(x, y string) { g.AddLink(ids[x], ids[y]) }
	link("S", "A")
	link("S", "W")
	link("W", "A")
	link("A", "B")
	link("B", "E")
	link("B", "Y")
	link("E", "C")
	link("Y", "C")
	link("C", "D")

	// The potential-path set is directed as drawn in Figure 3 (links are
	// used toward the destination); this is what makes detection fire at
	// B rather than waiting for C.
	directed := map[flash.DeviceID][]flash.DeviceID{
		ids["S"]: {ids["A"], ids["W"]},
		ids["W"]: {ids["A"]},
		ids["A"]: {ids["B"]},
		ids["B"]: {ids["E"], ids["Y"]},
		ids["E"]: {ids["C"]},
		ids["Y"]: {ids["C"]},
		ids["C"]: {ids["D"]},
	}

	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 8})
	sys, err := flash.NewSystem(flash.Config{
		Topo: g, Layout: layout,
		Succ: func(n flash.DeviceID) []flash.DeviceID { return directed[n] },
		Checks: []flash.CheckSpec{{
			Name:    "waypoint",
			Kind:    flash.CheckReach,
			Space:   flash.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: 0x80, Len: 1}},
			Expr:    "S .* [W|Y] .* D",
			Sources: []string{"S"},
			Dest:    "D",
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each device reports its converged FIB for epoch "t1". S bypasses W
	// (S→A) and B bypasses Y (B→E): after those two reports the waypoint
	// requirement is already unsatisfiable, whatever W, Y, C and D do.
	all := flash.MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Len: 0}}
	report := func(dev string, nextHop string) {
		action := flash.Forward(ids[nextHop])
		if nextHop == "" { // local delivery
			action = flash.Forward(flash.DeviceID(g.N()))
		}
		results, err := sys.FeedContext(context.Background(), flash.Msg{
			Device: ids[dev], Epoch: "t1",
			Updates: []flash.Update{
				{Op: fib.Insert, Rule: flash.Rule{ID: 1, Pri: 0, Action: action, Desc: all}},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s synchronized (next hop %q)\n", dev, nextHop)
		for _, r := range results {
			fmt.Println("  →", r)
		}
	}
	report("S", "A") // bypasses W: Y still possible → unknown
	report("A", "B")
	report("B", "E") // bypasses Y as well → early unsatisfied
	report("E", "C") // (already settled: no further reports)
	report("C", "D")
	report("D", "")
}

// Update storm: the motivating scenario of the paper's introduction. A
// data-center fabric boots and every switch installs its FIB at once —
// an update storm. This example compares per-update processing (the
// state-of-the-art the paper improves on) against Fast IMT block
// processing on the same storm, then drains the plane with the mirrored
// delete storm.
package main

import (
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/exps"
)

func main() {
	w := exps.Build(exps.LNetECMP, exps.Medium)
	fmt.Printf("fabric: %d switches, %d links, %d rules (source-match ECMP)\n",
		w.Topo.N(), w.Topo.NumLinks(), w.NumRules())

	storm := w.InsertSequence()
	fmt.Printf("storm: %d rule updates arrive at once\n\n", len(storm))

	perUpd, _ := exps.RunFlash(exps.Build(exps.LNetECMP, exps.Medium), storm, bdd.True, 0, true)
	fmt.Printf("per-update processing: %-12s %d predicate ops\n",
		perUpd.Time.Round(time.Millisecond), perUpd.Ops)

	fresh := exps.Build(exps.LNetECMP, exps.Medium)
	block, stats := exps.RunFlash(fresh, fresh.InsertSequence(), bdd.True, 0, false)
	fmt.Printf("Fast IMT (one block):  %-12s %d predicate ops\n",
		block.Time.Round(time.Millisecond), block.Ops)
	fmt.Printf("\nMR2 aggregation: %d atomic overwrites → %d conflict-free overwrites\n",
		stats.Atomic, stats.Aggregated)
	fmt.Printf("speedup: %.1fx (ops reduction %.1fx)\n",
		float64(perUpd.Time)/float64(block.Time),
		float64(perUpd.Ops)/float64(block.Ops))

	// Now the storm reverses (e.g. a simulation run is torn down): the
	// mirrored delete storm arrives, processed as a second block.
	rebuilt := exps.Build(exps.LNetECMP, exps.Medium)
	full, _ := exps.RunFlash(rebuilt, rebuilt.InsertThenDelete(), bdd.True, rebuilt.NumRules(), false)
	fmt.Printf("\ninsert+delete round trip (two blocks): %s, final classes: %d\n",
		full.Time.Round(time.Millisecond), full.ECs)
}

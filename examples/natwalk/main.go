// NAT walk: the §7 header-rewrite extension. A load balancer rewrites a
// virtual IP to a backend server address (the Maglev-style pattern the
// paper cites); the rewrite-aware checker validates the paper's
// well-formedness condition ("one equivalence class before and after the
// rewrite") and traces a packet through the rewrite.
package main

import (
	"fmt"
	"log"

	"repro/internal/bdd"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/imt"
	"repro/internal/pat"
	"repro/internal/rewrite"
)

func main() {
	// Devices: 0 = edge router, 1 = load balancer, 2 = backend server.
	const (
		edge   fib.DeviceID = 0
		lb     fib.DeviceID = 1
		server fib.DeviceID = 2
		nDev                = 3
	)
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 8}))
	store := pat.NewStore()
	tr := imt.NewTransformer(space.E, store, bdd.True)

	vip := space.Exact("dst", 0x01)     // the service VIP
	backend := space.Exact("dst", 0x81) // the real server address
	mustApply := func(blocks []fib.Block) {
		if err := tr.ApplyBlock(blocks); err != nil {
			log.Fatal(err)
		}
	}
	mustApply([]fib.Block{
		{Device: edge, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: vip, Pri: 1, Action: fib.Forward(lb)}},
		}},
		{Device: lb, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: backend, Pri: 1, Action: fib.Forward(server)}},
		}},
		{Device: server, Updates: []fib.Update{
			{Op: fib.Insert, Rule: fib.Rule{ID: 1, Match: bdd.True, Pri: 0, Action: fib.Drop}},
			{Op: fib.Insert, Rule: fib.Rule{ID: 2, Match: backend, Pri: 1, Action: fib.Forward(nDev)}},
		}},
	})

	set := rewrite.NewSet(space)
	if err := set.Add(rewrite.Rule{
		Device: lb, Match: vip, Field: "dst", Value: 0x81, Next: fib.Forward(server),
	}); err != nil {
		log.Fatal(err)
	}

	// The §7 condition: every rewrite maps one EC to one EC.
	if v := set.Validate(tr.Model()); len(v) != 0 {
		log.Fatalf("rewrite set ill-formed: %v", v)
	}
	fmt.Println("rewrite set is well-formed (one EC in, one EC out)")

	res, hops := set.Walk(tr, store, edge, hs.Header{0x01}, nDev)
	fmt.Printf("packet to VIP 0x01: %s\n", res)
	for _, h := range hops {
		mark := ""
		if h.Rewritten {
			mark = "  [dst rewritten]"
		}
		fmt.Printf("  device %d sees dst=%#02x%s\n", h.Device, h.Header[0], mark)
	}
}

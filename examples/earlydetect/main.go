// Early detection under long-tail arrivals: the paper's §5.3 scenario.
//
// An Internet2 control plane reconverges after a link failure; one router
// is "buggy" and installs a forwarding loop, and another is dampened —
// its updates take 60 (virtual) seconds to arrive. A verifier that waits
// for complete information cannot answer for a minute; Flash's CE2D
// reports the loop consistently within milliseconds, from the partial
// data plane.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bdd"
	"repro/internal/ce2d"
	"repro/internal/hs"
	"repro/internal/openr"
	"repro/internal/topo"
)

func main() {
	g := topo.Internet2()
	space := hs.NewSpace(hs.NewLayout(hs.Field{Name: "dst", Bits: 16}))
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}

	opts := openr.DefaultOptions()
	buggy := g.MustByName("kans")
	dampened := g.MustByName("seat")
	opts.Buggy = map[topo.NodeID]bool{buggy: true}
	opts.SendDelay = func(n topo.NodeID) openr.Time {
		if n == dampened {
			return 60_000_000 // 60 s dampening
		}
		return 0
	}
	sim := openr.New(g, space, owners, opts)

	disp := ce2d.NewDispatcher(func(e ce2d.Epoch) *ce2d.Verifier {
		return ce2d.NewVerifier(ce2d.Config{
			Topo:   g,
			Engine: space.E,
			Checks: []ce2d.Check{{
				Name: "loop-freedom", Kind: ce2d.CheckLoopFree, Space: bdd.True,
				CanExit: func(topo.NodeID) bool { return true },
			}},
		})
	})

	fmt.Printf("buggy router: %s, dampened router: %s (60s send delay)\n",
		g.Node(buggy).Name, g.Node(dampened).Name)
	fmt.Println("failing link chic—atla at t=10ms ...")
	sim.FailLink(10_000, g.MustByName("chic"), g.MustByName("atla"))
	sim.Run(120_000_000)

	for _, m := range sim.Messages() {
		evs, err := disp.Receive(m.Msg)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range evs {
			at := time.Duration(m.At) * time.Microsecond
			if ev.Event.Loop == ce2d.LoopFound {
				fmt.Printf("t=%-10v CE2D: forwarding LOOP in epoch %.8s — %v before the dampened router reported\n",
					at, ev.Epoch, 60*time.Second-at)
				return
			}
			fmt.Printf("t=%-10v CE2D: %v for epoch %.8s\n", at, ev.Event.Loop, ev.Epoch)
		}
	}
	fmt.Println("no loop detected")
}

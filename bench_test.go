package flash

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its experiment at Small scale and reports the
// paper's headline quantity as custom metrics, so `go test -bench=.`
// doubles as the reproduction harness (cmd/flashbench prints the full
// rows/series). See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bdd"
	"repro/internal/exps"
)

// BenchmarkTable3 runs the three systems on each Table 3 setting and
// reports Flash's speedup over the baselines (time and predicate
// operations).
func BenchmarkTable3(b *testing.B) {
	for _, s := range exps.AllSettings {
		s := s
		b.Run(string(s), func(b *testing.B) {
			var row exps.Table3Row
			for i := 0; i < b.N; i++ {
				row = exps.RunTable3(s, exps.Small, 1, 15*time.Second)
			}
			b.ReportMetric(float64(row.Flash.Time.Microseconds()), "flash-µs")
			b.ReportMetric(row.Speedup(row.DeltaNet), "x-vs-deltanet")
			b.ReportMetric(row.Speedup(row.APKeep), "x-vs-apkeep")
			b.ReportMetric(float64(row.Flash.Ops), "flash-predops")
			b.ReportMetric(float64(row.DeltaNet.Ops), "deltanet-ops")
			b.ReportMetric(float64(row.APKeep.Ops), "apkeep-predops")
		})
	}
}

// BenchmarkFig6Storm measures the complex-forwarding storm settings
// without subspace partitioning (the baseline evaluation of §5.2).
func BenchmarkFig6Storm(b *testing.B) {
	for _, s := range []exps.Setting{exps.LNetECMP, exps.LNetSMR} {
		s := s
		b.Run(string(s), func(b *testing.B) {
			var r exps.Fig6Result
			for i := 0; i < b.N; i++ {
				r = exps.RunFig6(s, exps.Small, 15*time.Second)
			}
			b.ReportMetric(float64(r.Flash.Time.Microseconds()), "flash-µs")
			b.ReportMetric(float64(r.DeltaNet.Time)/float64(r.Flash.Time), "x-vs-deltanet")
			b.ReportMetric(float64(r.APKeep.Time)/float64(r.Flash.Time), "x-vs-apkeep")
		})
	}
}

// BenchmarkFig7BlockSize sweeps the block size threshold (normalized
// model update speed vs BST/FIB-scale).
func BenchmarkFig7BlockSize(b *testing.B) {
	for _, f := range []float64{0.01, 0.04, 0.2, 1.0} {
		f := f
		b.Run(fmt.Sprintf("bst-%.3f", f), func(b *testing.B) {
			var pts []exps.Fig7Point
			for i := 0; i < b.N; i++ {
				pts = exps.RunFig7(exps.I2Trace, exps.Small, []float64{f})
			}
			b.ReportMetric(pts[0].Normalized, "normalized-speed")
		})
	}
}

// BenchmarkFig8Consistency runs the PUV/BUV/CE2D comparison; the headline
// is transient (false) loop reports — CE2D must report none.
func BenchmarkFig8Consistency(b *testing.B) {
	var r exps.Fig8Result
	for i := 0; i < b.N; i++ {
		r = exps.RunFig8()
	}
	if r.CE2DLoops != 0 {
		b.Fatalf("CE2D reported %d transient loops", r.CE2DLoops)
	}
	b.ReportMetric(float64(r.PUVTransient), "puv-transient-loops")
	b.ReportMetric(float64(r.BUVTransient), "buv-transient-loops")
	b.ReportMetric(float64(r.CE2DLoops), "ce2d-transient-loops")
}

// BenchmarkFig9LongTail reports the fraction of buggy-loop trials CE2D
// settles within one virtual second (baseline: 60 s dampening).
func BenchmarkFig9LongTail(b *testing.B) {
	var cdf exps.CDF
	for i := 0; i < b.N; i++ {
		cdf = exps.RunFig9OpenR(25, 7)
	}
	b.ReportMetric(cdf.Fraction(exps.Second), "frac-within-1s")
	b.ReportMetric(cdf.Fraction(60*exps.Second), "frac-within-60s")
}

// BenchmarkFig10Dampened sweeps the number of dampened switches.
func BenchmarkFig10Dampened(b *testing.B) {
	for _, d := range []int{1, 3, 5, 7} {
		d := d
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			var cdf exps.CDF
			for i := 0; i < b.N; i++ {
				cdf = exps.RunFig10Trace(25, d, int64(d))
			}
			b.ReportMetric(cdf.Fraction(800_000), "frac-within-800ms")
		})
	}
}

// BenchmarkFig11Breakdown reports the model-construction phase breakdown
// on the I2-trace setting.
func BenchmarkFig11Breakdown(b *testing.B) {
	var r exps.Fig11Result
	for i := 0; i < b.N; i++ {
		r = exps.RunFig11(exps.Small)
	}
	b.ReportMetric(float64(r.FlashMap.Microseconds()), "flash-map-µs")
	b.ReportMetric(float64(r.FlashReduce.Microseconds()), "flash-reduce-µs")
	b.ReportMetric(float64(r.FlashApply.Microseconds()), "flash-apply-µs")
	b.ReportMetric(float64(r.APKeepMap)/float64(r.FlashMap), "map-x-vs-apkeep")
	b.ReportMetric(float64(r.APKeepApply)/float64(r.FlashApply), "apply-x-vs-apkeep")
	b.ReportMetric(float64(r.PerUpdApply)/float64(r.FlashApply), "apply-x-vs-perupdate")
}

// BenchmarkFig12Reachability reports DGQ vs MT verification times for the
// all-pair ToR-to-ToR reachability check (Figure 12 / Figure 18).
func BenchmarkFig12Reachability(b *testing.B) {
	var r exps.Fig12Result
	for i := 0; i < b.N; i++ {
		r = exps.RunFig12(exps.Small)
	}
	b.ReportMetric(float64(exps.Quantile(r.DGQ, 0.99).Nanoseconds()), "dgq-p99-ns")
	b.ReportMetric(float64(exps.Quantile(r.MT, 0.99).Nanoseconds()), "mt-p99-ns")
	b.ReportMetric(float64(exps.Quantile(r.MT, 0.99))/float64(exps.Quantile(r.DGQ, 0.99)), "p99-improvement-x")
}

// BenchmarkFig14UpdateBurst measures the Appendix A burst generation.
func BenchmarkFig14UpdateBurst(b *testing.B) {
	var r exps.Fig14Series
	for i := 0; i < b.N; i++ {
		r = exps.RunFig14(256)
	}
	b.ReportMetric(float64(r.Burst1), "burst1-updates")
	b.ReportMetric(float64(r.Burst2), "burst2-updates")
}

// BenchmarkFig15PodAdd checks the pod-add closed forms against the
// paper's table (they must match exactly) and times the count model.
func BenchmarkFig15PodAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exps.RunFig15()
		if rows[0].Rules != 160 || rows[0].Deltas != 56 {
			b.Fatal("Figure 15 row mismatch")
		}
	}
}

// BenchmarkModelConstruction is the core microbench: Fast IMT block
// processing of a full fabric FIB (the unit of Table 3's Flash column).
func BenchmarkModelConstruction(b *testing.B) {
	for _, s := range []exps.Setting{exps.LNetAPSP, exps.LNetECMP, exps.LNetSMR} {
		s := s
		b.Run(string(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := exps.Build(s, exps.Small)
				res, _ := exps.RunFlash(w, w.InsertSequence(), bdd.True, 0, false)
				b.ReportMetric(float64(res.ECs), "classes")
			}
		})
	}
}

// BenchmarkPerUpdateAblation quantifies what MR2 aggregation buys:
// identical input, per-update vs block processing.
func BenchmarkPerUpdateAblation(b *testing.B) {
	b.Run("per-update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := exps.Build(exps.LNetECMP, exps.Small)
			exps.RunFlash(w, w.InsertSequence(), bdd.True, 0, true)
		}
	})
	b.Run("block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := exps.Build(exps.LNetECMP, exps.Small)
			exps.RunFlash(w, w.InsertSequence(), bdd.True, 0, false)
		}
	})
}

// BenchmarkSubspacePartition is the §3.4 ablation: the same storm with
// and without input-space partitioning.
func BenchmarkSubspacePartition(b *testing.B) {
	for _, nsub := range []int{1, 4} {
		nsub := nsub
		b.Run(map[int]string{1: "none", 4: "4-subspaces"}[nsub], func(b *testing.B) {
			var row exps.Table3Row
			for i := 0; i < b.N; i++ {
				row = exps.RunTable3(exps.LNetSMR, exps.Small, nsub, 15*time.Second)
			}
			b.ReportMetric(float64(row.Flash.Time.Microseconds()), "flash-µs")
		})
	}
}

package flash

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faulty"
	"repro/internal/fib"
	"repro/internal/hs"
	"repro/internal/obs"
	"repro/internal/openr"
	"repro/internal/topo"
	"repro/internal/wire"
)

// chaosSeed resolves the fault-injection seed: fixed by default (the CI
// mode), overridden by FLASH_CHAOS_SEED — an integer, or "random" for a
// fresh seed logged for reproduction (`make chaos-random`).
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	switch v := os.Getenv("FLASH_CHAOS_SEED"); v {
	case "":
		// The default seed is pinned to a schedule that fires every fault
		// class (loss, dup, reorder, truncate, disconnect, delay) against
		// the Internet2 workload — see TestChaosModelEquality's coverage
		// gate before changing it.
		return 3
	case "random":
		seed := time.Now().UnixNano()
		t.Logf("chaos: randomized seed %d (reproduce with FLASH_CHAOS_SEED=%d)", seed, seed)
		return seed
	default:
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FLASH_CHAOS_SEED=%q: %v", v, err)
		}
		t.Logf("chaos: seed %d from FLASH_CHAOS_SEED", seed)
		return seed
	}
}

// chaosWorkload generates the deterministic message stream both chaos
// runs consume: an OpenR control-plane simulation on Internet2 with a
// mid-run link failure, exactly as the end-to-end integration test.
func chaosWorkload(t *testing.T) (*topo.Graph, *hs.Layout, []wire.Msg) {
	t.Helper()
	g := topo.Internet2()
	layout := hs.NewLayout(hs.Field{Name: "dst", Bits: 16})
	space := hs.NewSpace(layout)
	owners := make([]topo.NodeID, g.N())
	for i := range owners {
		owners[i] = topo.NodeID(i)
	}
	sim := openr.New(g, space, owners, openr.DefaultOptions())
	sim.FailLink(10_000, g.MustByName("chic"), g.MustByName("kans"))
	sim.Run(60_000_000)
	var msgs []wire.Msg
	for _, m := range sim.Messages() {
		wm, err := wire.FromFib(m.Msg.Device, string(m.Msg.Epoch), m.Msg.Updates)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, wm)
	}
	if len(msgs) == 0 {
		t.Fatal("empty chaos workload")
	}
	return g, layout, msgs
}

// runChaos streams the workload to a fresh server through one agent
// stream — clean when inject is nil, fault-injected otherwise — and
// returns the detection results plus the final epoch's model
// fingerprint. Results are normalized without their witness header and
// sorted: the engine enumerates equivalence classes in map order, so
// witness choice and intra-epoch result order vary run to run even
// fault-free, while the verdict multiset and the model itself are the
// invariants replay must preserve.
func runChaos(t *testing.T, g *topo.Graph, layout *hs.Layout, msgs []wire.Msg, seed int64, inject *faulty.Injector) ([]string, string) {
	t.Helper()
	sys, err := NewSystem(
		WithTopo(g),
		WithLayout(layout),
		WithSubspaces(2, ""),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu      sync.Mutex
		results []string
	)
	srv := NewServer(l, sys, func(r Result) {
		verdict := r.Verdict.String()
		if r.Loop != LoopUnknown {
			verdict = r.Loop.String()
		}
		mu.Lock()
		results = append(results, fmt.Sprintf("[%s] check %q subspace %d: %s", r.Epoch, r.Check, r.Subspace, verdict))
		mu.Unlock()
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	opts := AgentOptions{
		Stream:        "chaos-agent",
		Reconnect:     true,
		BackoffMin:    time.Millisecond,
		BackoffMax:    10 * time.Millisecond,
		ResendTimeout: 200 * time.Millisecond,
		Rand:          rand.New(rand.NewSource(seed)),
	}
	if inject != nil {
		opts.Dial = func(a string) (net.Conn, error) {
			conn, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			return inject.WrapConn(conn), nil
		}
	}
	ag, err := DialAgentOptions(l.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()
	for _, m := range msgs {
		if err := ag.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := ag.WaitAcked(ctx); err != nil {
		t.Fatalf("drain: %v (reconnects=%d unacked=%d)", err, ag.Reconnects(), ag.Unacked())
	}
	if q := srv.QuarantinedDevices(); len(q) != 0 {
		t.Fatalf("devices quarantined during chaos run: %v", q)
	}
	fp, err := sys.ModelFingerprint(msgs[len(msgs)-1].Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	sort.Strings(results)
	return results, fp
}

// TestChaosModelEquality is the tentpole acceptance test: under seeded
// loss, duplication, reorder, delay and mid-frame disconnect faults, the
// final per-device EC model and the CE2D verdict stream must be
// identical to a fault-free run — at-least-once replay with
// receiver-side dedup applies every block exactly once, in order.
func TestChaosModelEquality(t *testing.T) {
	seed := chaosSeed(t)
	g, layout, msgs := chaosWorkload(t)

	cleanResults, cleanFP := runChaos(t, g, layout, msgs, seed, nil)

	inj := faulty.New(faulty.Config{
		Seed:       seed,
		Drop:       0.12,
		Dup:        0.12,
		Reorder:    0.10,
		Delay:      0.05,
		MaxDelay:   2 * time.Millisecond,
		Truncate:   0.06,
		Disconnect: 0.04,
		MaxFaults:  80,
	})
	faultyResults, faultyFP := runChaos(t, g, layout, msgs, seed, inj)

	stats := inj.Stats()
	t.Logf("chaos: injected faults: %+v (total %d) over %d messages", stats, stats.Total(), len(msgs))
	if os.Getenv("FLASH_CHAOS_SEED") == "" {
		// The default seed is pinned to full fault-class coverage; an
		// overridden (possibly random) seed only has to fire something.
		if stats.Drops == 0 || stats.Dups == 0 || stats.Reorders == 0 {
			t.Fatalf("fault schedule too tame to prove anything: %+v (need loss, dup and reorder)", stats)
		}
		if stats.Truncations+stats.Disconnects == 0 {
			t.Fatalf("fault schedule never severed the connection: %+v (need a reconnect+replay cycle)", stats)
		}
	} else if stats.Total() == 0 {
		t.Fatal("fault injector fired no faults; the run proves nothing")
	}
	if faultyFP != cleanFP {
		t.Fatalf("model fingerprint diverged under faults:\n  clean  %s\n  faulty %s", cleanFP, faultyFP)
	}
	if len(faultyResults) != len(cleanResults) {
		t.Fatalf("result count diverged: clean %d, faulty %d", len(cleanResults), len(faultyResults))
	}
	for i := range cleanResults {
		if faultyResults[i] != cleanResults[i] {
			t.Fatalf("result %d diverged:\n  clean  %s\n  faulty %s", i, cleanResults[i], faultyResults[i])
		}
	}
}

// ---- raw session frames (hand-encoded, for poisoning the stream) ----

func rawFrame(body []byte) []byte {
	out := make([]byte, 4, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	return append(out, body...)
}

func rawHello(stream string) []byte {
	b := []byte{0x01, 2} // hello, session version
	b = append(b, byte(len(stream)>>8), byte(len(stream)))
	b = append(b, stream...)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 1) // first = 1
	b = append(b, 0, 0, 0, 0)             // attempt = 0
	return rawFrame(b)
}

func rawData(dev DeviceID, seq uint64, msgBody []byte) []byte {
	b := []byte{0x02}
	b = binary.BigEndian.AppendUint32(b, uint32(dev))
	b = binary.BigEndian.AppendUint64(b, seq)
	return rawFrame(append(b, msgBody...))
}

// encodeMsgBody reuses the public Msg codec and strips the frame length
// prefix, leaving the bare body a session data frame embeds.
func encodeMsgBody(t *testing.T, m wire.Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()[4:]
}

// readAck reads session frames off a raw connection until a cumulative
// ack ≥ want arrives.
func readAck(t *testing.T, conn net.Conn, want uint64) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatalf("waiting for ack %d: %v", want, err)
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatalf("waiting for ack %d: %v", want, err)
		}
		if len(body) == 9 && body[0] == 0x03 && binary.BigEndian.Uint64(body[1:]) >= want {
			return
		}
	}
}

func chaosTestMsg(dev DeviceID, epoch string, dst uint64) wire.Msg {
	return chaosTestMsgID(dev, epoch, dst, 1)
}

// chaosTestMsgID picks the rule identity explicitly: a device streaming
// several epochs feeds them all into the same inverse model, so each
// message must install a distinct rule.
func chaosTestMsgID(dev DeviceID, epoch string, dst uint64, id int64) wire.Msg {
	return wire.Msg{Device: dev, Epoch: epoch, Updates: []wire.Update{{
		Op: fib.Insert,
		Rule: wire.Rule{ID: id, Pri: 1, Action: Forward(DeviceID(2)),
			Desc: MatchDesc{{Field: "dst", Kind: fib.MatchPrefix, Value: dst, Len: 16}}},
	}}}
}

func startChaosServer(t *testing.T, reg *obs.Registry, opts ...ServeOption) (*Server, *System, string) {
	t.Helper()
	sysOpts := []Option{
		WithTopo(topo.Internet2()),
		WithLayout(hs.NewLayout(hs.Field{Name: "dst", Bits: 16})),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	}
	if reg != nil {
		sysOpts = append(sysOpts, WithMetrics(reg))
	}
	sys, err := NewSystem(sysOpts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, sys, nil, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, sys, l.Addr().String()
}

// TestCorruptFrameQuarantinesDevice: a data frame with an intact
// envelope but a garbage body must quarantine the named device and keep
// the connection (and every other device) verifying.
func TestCorruptFrameQuarantinesDevice(t *testing.T) {
	reg := obs.NewRegistry("chaos-corrupt")
	srv, _, addr := startChaosServer(t, reg)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var stream []byte
	stream = append(stream, rawHello("evil")...)
	stream = append(stream, rawData(7, 1, []byte{0xFF})...) // body too short to parse
	stream = append(stream, rawData(8, 2, encodeMsgBody(t, chaosTestMsg(8, "e1", 0x0800)))...)
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}
	readAck(t, conn, 2) // the connection survived the poisoned frame

	if q := srv.QuarantinedDevices(); len(q) != 1 || q[0] != 7 {
		t.Fatalf("quarantined = %v, want [7]", q)
	}
	if h := srv.Health(); !h.Degraded || len(h.Reasons) != 1 || !strings.Contains(h.Reasons[0], "device 7") {
		t.Fatalf("health = %+v, want degraded by device 7", h)
	}

	// A later, well-formed frame from the quarantined device is consumed
	// (and acked — no endless replay) but dropped.
	if _, err := conn.Write(rawData(7, 3, encodeMsgBody(t, chaosTestMsg(7, "e1", 0x0700)))); err != nil {
		t.Fatal(err)
	}
	readAck(t, conn, 3)
	snap := reg.Snapshot()
	if v, ok := snap.Get("wire", "corrupt_frames"); !ok || v != 1 {
		t.Fatalf("wire/corrupt_frames = %d (%v), want 1", v, ok)
	}
	if v, ok := snap.Get("serve", "quarantine_drops"); !ok || v != 1 {
		t.Fatalf("serve/quarantine_drops = %d (%v), want 1", v, ok)
	}
	if v, ok := snap.Get("serve", "quarantines_total"); !ok || v != 1 {
		t.Fatalf("serve/quarantines_total = %d (%v), want 1", v, ok)
	}
}

// TestFeedErrorQuarantinesDevice: a device whose Feed errors (here: it
// violates the one-message-per-epoch contract) is quarantined instead of
// killing the connection; the quarantine expires after its TTL.
func TestFeedErrorQuarantinesDevice(t *testing.T) {
	reg := obs.NewRegistry("chaos-feederr")
	srv, _, addr := startChaosServer(t, reg, WithQuarantineTTL(200*time.Millisecond))
	ag, err := DialAgent(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()

	send := func(m wire.Msg) {
		t.Helper()
		if err := ag.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	send(chaosTestMsg(1, "e1", 0x0100))
	send(chaosTestMsg(1, "e1", 0x0101)) // second message for a synced epoch: Feed errors
	send(chaosTestMsg(2, "e1", 0x0200)) // a different device must still verify
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ag.WaitAcked(ctx); err != nil {
		t.Fatalf("the connection died on a feed error: %v", err)
	}
	if q := srv.QuarantinedDevices(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", q)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Get("serve", "feed_errors"); !ok || v != 1 {
		t.Fatalf("serve/feed_errors = %d (%v), want 1", v, ok)
	}
	if v, ok := snap.Get("wire", "frames_rx"); !ok || v != 3 {
		t.Fatalf("wire/frames_rx = %d (%v), want 3", v, ok)
	}

	// The quarantine expires; the device may feed again.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.QuarantinedDevices()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("quarantine did not expire: %v", srv.QuarantinedDevices())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h := srv.Health(); h.Degraded {
		t.Fatalf("health still degraded after expiry: %+v", h)
	}
}

// TestWorkerPanicQuarantinesSubspace: a panicking subspace worker is
// quarantined while the rest keep verifying; /healthz reports degraded;
// only when every subspace is gone does Feed fail.
func TestWorkerPanicQuarantinesSubspace(t *testing.T) {
	reg := obs.NewRegistry("chaos-panic")
	sys, err := NewSystem(
		WithTopo(topo.Internet2()),
		WithLayout(hs.NewLayout(hs.Field{Name: "dst", Bits: 16})),
		WithSubspaces(2, ""),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
		WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	var poisonTarget atomic.Int64
	poisonTarget.Store(-1)
	sys.SetFeedHook(func(subspace int, _ Msg) {
		if int64(subspace) == poisonTarget.Load() {
			panic(fmt.Sprintf("injected panic in subspace %d", subspace))
		}
	})

	if _, err := sys.FeedContext(context.Background(), chaosTestMsg(1, "e1", 0x0100)); err != nil {
		t.Fatal(err)
	}
	poisonTarget.Store(1)
	results, err := sys.FeedContext(context.Background(), chaosTestMsg(2, "e1", 0x8200)) // subspace 1 panics here
	if err != nil {
		t.Fatalf("feed with one poisoned subspace must not error: %v", err)
	}
	for _, r := range results {
		if r.Subspace == 1 {
			t.Fatalf("result from the quarantined subspace: %+v", r)
		}
	}
	if got := sys.PoisonedSubspaces(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("poisoned = %v, want [1]", got)
	}
	if v, ok := reg.Snapshot().Get("ce2d", "worker_panics"); !ok || v != 1 {
		t.Fatalf("ce2d/worker_panics = %d (%v), want 1", v, ok)
	}

	// The healthy subspace keeps verifying across further feeds.
	poisonTarget.Store(-1)
	if _, err := sys.FeedContext(context.Background(), chaosTestMsg(3, "e1", 0x0300)); err != nil {
		t.Fatal(err)
	}

	// /healthz flips to degraded with the quarantined subspace named.
	ts := httptest.NewServer(NewAdminHandler(WithAdminMetrics(reg), WithAdminHealth(sys.Health)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "degraded\n") || !strings.Contains(string(body), "subspace 1") {
		t.Fatalf("healthz = %q, want degraded naming subspace 1", body)
	}

	// Poison the last subspace: now, and only now, Feed fails.
	poisonTarget.Store(0)
	if _, err := sys.FeedContext(context.Background(), chaosTestMsg(4, "e1", 0x0400)); err != nil {
		t.Fatalf("the poisoning feed itself still has a live worker at entry: %v", err)
	}
	if _, err := sys.FeedContext(context.Background(), chaosTestMsg(5, "e1", 0x0500)); !errors.Is(err, ErrSubspacePoisoned) {
		t.Fatalf("feed with all subspaces poisoned: %v, want ErrSubspacePoisoned", err)
	}
}

// TestPipelineCloseWhileFeeding closes a Pipeline while concurrent
// feeders are still in flight (run under -race by `make chaos`): no
// deadlock, no double close, feeds after close get ErrClosed.
func TestPipelineCloseWhileFeeding(t *testing.T) {
	sys, err := NewSystem(
		WithTopo(topo.Internet2()),
		WithLayout(hs.NewLayout(hs.Field{Name: "dst", Bits: 16})),
		WithChecks(CheckSpec{Name: "loops", Kind: CheckLoopFree}),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(sys, 4)
	drained := make(chan int)
	go func() {
		n := 0
		for range p.Results() {
			n++
		}
		drained <- n
	}()
	var wg sync.WaitGroup
	for dev := 1; dev <= 4; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			// Bounded intake: Feed never blocks, so an unbounded loop
			// would pile up epochs faster than verification drains them.
			for i := 0; i < 20; i++ {
				m := chaosTestMsgID(DeviceID(dev), fmt.Sprintf("e%d", i), uint64(dev)<<8|uint64(i%7), int64(i+1))
				if err := p.FeedContext(context.Background(), m); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("feed: %v", err)
					}
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(dev)
	}
	time.Sleep(10 * time.Millisecond)
	if err := p.Close(); err != nil { // races the in-flight feeders
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	<-drained
}
